package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"cacheautomaton/internal/faults"
	"cacheautomaton/internal/telemetry"
)

// The TCP transport frames the same API as one JSON object per line: the
// client writes {"op": "...", ...fields...}\n and reads one JSON line
// back — {"ok":true, ...result...} or {"ok":false,"error":...,"status":N}.
// Ops: compile (name + CompileRequest), match (MatchRequest), open
// (OpenSessionRequest), feed (session + FeedRequest), suspend (session),
// close (session), list_rulesets, list_sessions, health, ping.
//
// Line framing keeps the protocol trivially scriptable (nc, or any
// language's readline + JSON) while still carrying binary payloads via
// the *_b64 fields.

// tcpRequest is the envelope of one line-framed request: the union of
// every op's fields, flattened (embedding the HTTP request structs would
// make their shared "ruleset" tags collide and silently decode to
// nothing).
type tcpRequest struct {
	Op      string `json:"op"`
	Name    string `json:"name,omitempty"`    // compile: ruleset name
	ID      string `json:"session,omitempty"` // feed/suspend/close
	Ruleset string `json:"ruleset,omitempty"` // match/open

	// compile
	Format             string   `json:"format,omitempty"`
	Patterns           []string `json:"patterns,omitempty"`
	Text               string   `json:"text,omitempty"`
	Design             string   `json:"design,omitempty"`
	CaseInsensitive    bool     `json:"case_insensitive,omitempty"`
	DotExcludesNewline bool     `json:"dot_excludes_newline,omitempty"`
	MaxRepeat          int      `json:"max_repeat,omitempty"`
	Seed               int64    `json:"seed,omitempty"`

	// match
	Input    string `json:"input,omitempty"`
	InputB64 string `json:"input_b64,omitempty"`
	Shards   int    `json:"shards,omitempty"`

	// open (resume)
	SnapshotB64 string `json:"snapshot_b64,omitempty"`

	// feed
	Chunk    string `json:"chunk,omitempty"`
	ChunkB64 string `json:"chunk_b64,omitempty"`
}

// tcpOK wraps a result with the ok flag. TraceID is the request's
// flight-recorder id (the TCP analogue of the X-CA-Trace-Id header).
type tcpOK struct {
	OK      bool   `json:"ok"`
	Result  any    `json:"result,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

type tcpErr struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error"`
	Status  int    `json:"status"`
	TraceID string `json:"trace_id,omitempty"`
}

// TCPServer serves the line-framed protocol on one listener.
type TCPServer struct {
	s  *Server
	ln net.Listener

	// baseCtx parents every request executed on this transport; Shutdown
	// cancels it at the drain deadline so in-flight ops abort through the
	// engine's cancellation path instead of being cut mid-write by
	// forceClose alone.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	conns  map[*tcpConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// tcpConn is one client connection; busy is true while a request line is
// being executed, so Shutdown can close idle connections immediately
// (mirroring http.Server.Shutdown) and wait only for in-flight work.
// busy and closing share one mutex: a line that Scan has already read is
// only executed if Shutdown has not yet claimed the conn, so an op never
// runs after its response channel is gone.
type tcpConn struct {
	net.Conn
	mu      sync.Mutex
	busy    bool // a request line is executing
	closing bool // Shutdown decided to close this conn
}

// beginRequest marks the conn busy and reports whether the request may
// execute; it refuses when Shutdown already claimed the conn (the line
// was read before the close landed — executing it would lose the
// response, and with it any one-shot state such as a suspend snapshot).
func (c *tcpConn) beginRequest() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closing {
		return false
	}
	c.busy = true
	return true
}

// endRequest clears busy and reports whether Shutdown wants the conn
// gone, so the serve loop stops instead of reading another line.
func (c *tcpConn) endRequest() (closing bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closing
}

// closeIfIdle closes the conn unless a request is executing; once
// claimed, no further request lines will run on it.
func (c *tcpConn) closeIfIdle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.busy {
		c.closing = true
		c.Conn.Close()
	}
}

// forceClose closes the conn regardless of in-flight work (drain
// deadline expired).
func (c *tcpConn) forceClose() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closing = true
	c.Conn.Close()
}

// ServeTCP starts serving the line protocol on ln until Shutdown (or a
// listener error). It returns immediately; connections are handled on
// their own goroutines.
func (s *Server) ServeTCP(ln net.Listener) *TCPServer {
	t := &TCPServer{s: s, ln: ln, conns: make(map[*tcpConn]struct{})}
	t.baseCtx, t.cancel = context.WithCancel(context.Background())
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal accept error
		}
		conn := &tcpConn{Conn: c}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// Addr returns the listener address.
func (t *TCPServer) Addr() net.Addr { return t.ln.Addr() }

func (t *TCPServer) serveConn(conn *tcpConn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	// Dropped-connection injection point: the conn dies before serving a
	// line, as if the network reset it — clients must see a clean close,
	// and the server must leak nothing. No request is in flight yet, so
	// the fault lands on a synthetic conn-scoped trace.
	if err := faults.Check("server.tcp.conn"); err != nil {
		rt := t.s.newTrace("tcp.conn")
		rt.Annotate("fault", "server.tcp.conn")
		t.s.finishTrace(rt, "fault", err.Error())
		return
	}
	sc := bufio.NewScanner(conn)
	// Lines carry base64 payloads: size the scanner for the body cap plus
	// base64 expansion and envelope overhead.
	max := int(t.s.cfg.MaxBodyBytes)*4/3 + 4096
	sc.Buffer(make([]byte, 0, 64*1024), max)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !conn.beginRequest() {
			return // Shutdown claimed the conn after this line was read
		}
		resp := t.dispatch(t.baseCtx, line)
		err := enc.Encode(resp)
		if conn.endRequest() || err != nil {
			return
		}
	}
	// Oversized or torn lines surface as a final structured error when
	// the connection is still writable.
	if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		_ = enc.Encode(tcpErr{Error: "read: " + err.Error(), Status: http.StatusBadRequest})
	}
}

// dispatch decodes and executes one line. Malformed input yields a
// structured error line, never a dropped connection or a panic; a
// panicking op is recovered into a structured 500 line (the same
// isolation the HTTP transport's reply applies).
func (t *TCPServer) dispatch(ctx context.Context, line []byte) (resp any) {
	s := t.s
	s.col.Requests.Inc()
	s.col.InFlight.Add(1)
	start := time.Now()
	var (
		rt      *telemetry.ReqTrace
		traceID string
	)
	defer func() {
		s.col.RequestSeconds.Observe(time.Since(start).Seconds())
		s.col.InFlight.Add(-1)
		if r := recover(); r != nil {
			s.col.Panics.Inc()
			s.col.RequestErrors.Inc()
			if p, ok := r.(*faults.Panic); ok {
				rt.Annotate("fault", p.Point)
			}
			s.finishTrace(rt, "panic", fmt.Sprint(r))
			resp = tcpErr{Error: fmt.Sprintf("internal panic: %v", r), Status: http.StatusInternalServerError, TraceID: traceID}
		}
	}()
	var req tcpRequest
	if err := json.Unmarshal(line, &req); err != nil {
		s.col.RequestErrors.Inc()
		return tcpErr{Error: "bad JSON request: " + err.Error(), Status: http.StatusBadRequest}
	}
	op := req.Op
	if op == "" {
		op = "unknown"
	}
	rt = s.newTrace("tcp." + op)
	if rt != nil {
		traceID = rt.ID()
	}
	out, err := t.execute(telemetry.WithReqTrace(ctx, rt), &req)
	if err != nil {
		s.col.RequestErrors.Inc()
		outcome, msg := outcomeOf(err)
		s.finishTrace(rt, outcome, msg)
		return tcpErr{Error: err.Error(), Status: statusOf(err), TraceID: traceID}
	}
	s.finishTrace(rt, "ok", "")
	return tcpOK{OK: true, Result: out, TraceID: traceID}
}

func (t *TCPServer) execute(ctx context.Context, req *tcpRequest) (any, error) {
	s := t.s
	switch req.Op {
	case "compile":
		return s.Compile(ctx, req.Name, CompileRequest{
			Format:             req.Format,
			Patterns:           req.Patterns,
			Text:               req.Text,
			Design:             req.Design,
			CaseInsensitive:    req.CaseInsensitive,
			DotExcludesNewline: req.DotExcludesNewline,
			MaxRepeat:          req.MaxRepeat,
			Seed:               req.Seed,
		})
	case "match":
		return s.Match(ctx, MatchRequest{
			Ruleset:  req.Ruleset,
			Input:    req.Input,
			InputB64: req.InputB64,
			Shards:   req.Shards,
		})
	case "open":
		return s.OpenSession(ctx, OpenSessionRequest{Ruleset: req.Ruleset, SnapshotB64: req.SnapshotB64})
	case "feed":
		return s.Feed(ctx, req.ID, FeedRequest{Chunk: req.Chunk, ChunkB64: req.ChunkB64})
	case "suspend":
		return s.Suspend(ctx, req.ID)
	case "close":
		return okBody{}, s.CloseSession(ctx, req.ID)
	case "list_rulesets":
		return s.Rulesets(), nil
	case "list_sessions":
		return s.Sessions(), nil
	case "health":
		return s.Healthz(), nil
	case "ping":
		return "pong", nil
	case "":
		return nil, errf(http.StatusBadRequest, "missing op")
	default:
		return nil, errf(http.StatusBadRequest, "unknown op %q", req.Op)
	}
}

// Shutdown stops accepting, closes idle connections immediately (like
// http.Server.Shutdown), waits for in-flight request lines to deliver
// their responses, and force-closes whatever remains when ctx expires.
func (t *TCPServer) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		t.ln.Close()
	}
	t.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(finished)
	}()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		t.mu.Lock()
		for c := range t.conns {
			c.closeIfIdle()
		}
		t.mu.Unlock()
		select {
		case <-finished:
			t.cancel()
			return nil
		case <-ctx.Done():
			// Abort in-flight ops through the engine's cancellation path
			// first, then cut whatever still won't finish.
			t.cancel()
			t.mu.Lock()
			for c := range t.conns {
				c.forceClose()
			}
			t.mu.Unlock()
			<-finished
			return ctx.Err()
		case <-tick.C:
		}
	}
}
