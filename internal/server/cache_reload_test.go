package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	ca "cacheautomaton"
	"cacheautomaton/internal/telemetry"
)

// TestCompileCacheReplayCompilesOnce is the compile-counter proof of the
// cache contract: a restart with both the compile cache and the WAL
// attached replays every session without recompiling a valid cached rule
// set — the second boot shows exactly one cache hit and zero misses, and
// the resumed streams continue bit-identically (including a match
// straddling the restart).
func TestCompileCacheReplayCompilesOnce(t *testing.T) {
	cacheDir := t.TempDir()
	walDir := t.TempDir()
	ctx := context.Background()

	s1 := New(Config{Registry: telemetry.NewRegistry()})
	if err := s1.AttachCache(cacheDir); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.AttachWAL(walDir); err != nil {
		t.Fatal(err)
	}
	info, err := s1.Compile(ctx, "ids", CompileRequest{Patterns: []string{"needle", "ha+y"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("first compile reported cached")
	}
	if h, m := s1.col.CacheHits.Value(), s1.col.CacheMisses.Value(); h != 0 || m != 1 {
		t.Fatalf("cold compile: hits=%d misses=%d, want 0/1", h, m)
	}
	sess1, err := s1.OpenSession(ctx, OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := s1.OpenSession(ctx, OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	// Leave a match straddling the restart: "nee" now, "dle" after.
	if _, err := s1.Feed(ctx, sess1.Session, FeedRequest{Chunk: "xx nee"}); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	s2 := New(Config{Registry: telemetry.NewRegistry()})
	if err := s2.AttachCache(cacheDir); err != nil {
		t.Fatal(err)
	}
	st, err := s2.AttachWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s2.Shutdown(sctx)
	})
	if st.Rulesets != 1 || st.Sessions != 2 || st.SkippedSessions != 0 {
		t.Fatalf("replay stats = %+v, want 1 ruleset, 2 sessions", st)
	}
	// The acceptance criterion: replay loaded the cached automaton and
	// never compiled from source.
	if h, m, e := s2.col.CacheHits.Value(), s2.col.CacheMisses.Value(), s2.col.CacheErrors.Value(); h != 1 || m != 0 || e != 0 {
		t.Fatalf("warm replay: hits=%d misses=%d errors=%d, want 1/0/0", h, m, e)
	}
	ri, err := s2.Ruleset("ids")
	if err != nil {
		t.Fatal(err)
	}
	if !ri.Cached {
		t.Fatalf("replayed ruleset not marked cached: %+v", ri)
	}
	fr, err := s2.Feed(ctx, sess1.Session, FeedRequest{Chunk: "dle yy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Matches) != 1 || fr.Matches[0].Offset != 8 || fr.Matches[0].Pattern != 0 {
		t.Fatalf("straddling match after cached replay = %+v, want needle@8", fr.Matches)
	}
	if _, err := s2.Feed(ctx, sess2.Session, FeedRequest{Chunk: "haaay"}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileCacheCorruptEntryFallsBack bit-flips the stored cache entry
// and checks the next boot recompiles (ca_cache_errors_total counts the
// eviction) instead of failing, and re-stores a good entry that the boot
// after that loads.
func TestCompileCacheCorruptEntryFallsBack(t *testing.T) {
	cacheDir := t.TempDir()
	ctx := context.Background()
	req := CompileRequest{Patterns: []string{"needle"}}

	boot := func() (*Server, *RulesetInfo) {
		t.Helper()
		s := New(Config{Registry: telemetry.NewRegistry()})
		if err := s.AttachCache(cacheDir); err != nil {
			t.Fatal(err)
		}
		info, err := s.Compile(ctx, "ids", req)
		if err != nil {
			t.Fatal(err)
		}
		return s, info
	}
	shutdown := func(s *Server) {
		t.Helper()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(sctx)
	}

	s1, info1 := boot()
	if info1.Cached {
		t.Fatal("first compile reported cached")
	}
	shutdown(s1)

	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.caf"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly 1", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 3; i < len(data)/3+8 && i < len(data); i++ {
		data[i] ^= 0x5a
	}
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info2 := boot()
	if info2.Cached {
		t.Fatal("corrupted entry served as a cache hit")
	}
	if e := s2.col.CacheErrors.Value(); e < 1 {
		t.Fatalf("cache errors = %d, want >= 1 after corrupted entry", e)
	}
	if h := s2.col.CacheHits.Value(); h != 0 {
		t.Fatalf("cache hits = %d, want 0", h)
	}
	// The fallback compile still serves.
	mr, err := s2.Match(ctx, MatchRequest{Ruleset: "ids", Input: "a needle"})
	if err != nil || len(mr.Matches) != 1 {
		t.Fatalf("match after fallback: %v %+v", err, mr)
	}
	shutdown(s2)

	// The fallback re-stored the entry: the next boot is a clean hit.
	s3, info3 := boot()
	if !info3.Cached {
		t.Fatal("re-stored entry not served as a cache hit")
	}
	if h, e := s3.col.CacheHits.Value(), s3.col.CacheErrors.Value(); h != 1 || e != 0 {
		t.Fatalf("third boot: hits=%d errors=%d, want 1/0", h, e)
	}
	shutdown(s3)
}

// doAuth posts body (marshaled, nil for an empty body) with a bearer
// token and decodes the response into out, returning the status code.
func doAuth(t *testing.T, url, token string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest("POST", url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: bad response %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// TestReloadAuth covers the authenticated reload endpoint: 401 without or
// with a wrong bearer token, 200 with the right one; an empty body
// rebuilds the stored definition and bumps the version; a body replaces
// the definition; unknown names 404 instead of being created.
func TestReloadAuth(t *testing.T) {
	_, ts := testServer(t, Config{AdminToken: "sekrit"})
	compileRules(t, ts, "ids", "aaa")
	url := ts.URL + "/rulesets/ids/reload"

	if code := doAuth(t, url, "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("reload without token: status %d, want 401", code)
	}
	if code := doAuth(t, url, "wrong", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("reload with wrong token: status %d, want 401", code)
	}
	var info RulesetInfo
	if code := doAuth(t, url, "sekrit", nil, &info); code != http.StatusOK {
		t.Fatalf("reload with token: status %d, want 200", code)
	}
	if info.Version != 2 || info.Patterns != 1 {
		t.Fatalf("empty-body reload info = %+v, want version 2 rebuilt from the stored definition", info)
	}
	var resp MatchResponse
	if code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "aaa"}, &resp); code != 200 || len(resp.Matches) != 1 {
		t.Fatalf("match after empty-body reload: %d %+v", code, resp)
	}

	if code := doAuth(t, url, "sekrit", CompileRequest{Patterns: []string{"bbb"}}, &info); code != http.StatusOK {
		t.Fatalf("reload with body: status %d", code)
	}
	if info.Version != 3 {
		t.Fatalf("replacing reload version = %d, want 3", info.Version)
	}
	if code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "bbb"}, &resp); code != 200 || len(resp.Matches) != 1 {
		t.Fatalf("match after replacing reload: %d %+v", code, resp)
	}

	if code := doAuth(t, ts.URL+"/rulesets/nosuch/reload", "sekrit", nil, nil); code != http.StatusNotFound {
		t.Fatalf("reload of unknown name: status %d, want 404", code)
	}
}

// TestReloadAtomicSwapSessionsKeepVersion pins the swap semantics:
// sessions opened before a reload keep the automaton they were admitted
// to until they close, while new sessions and one-shot matches after the
// swap serve the new version.
func TestReloadAtomicSwapSessionsKeepVersion(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	if _, err := s.Compile(ctx, "ids", CompileRequest{Patterns: []string{"aaa"}}); err != nil {
		t.Fatal(err)
	}
	old, err := s.OpenSession(ctx, OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Reload(ctx, "ids", &CompileRequest{Patterns: []string{"bbb"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info.Version)
	}
	// The v1 session still matches v1's patterns and nothing else.
	fr, err := s.Feed(ctx, old.Session, FeedRequest{Chunk: "aaa bbb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Matches) != 1 || fr.Matches[0].Offset != 2 {
		t.Fatalf("v1 session matches = %+v, want only aaa@2", fr.Matches)
	}
	// A session opened after the swap serves v2.
	fresh, err := s.OpenSession(ctx, OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	fr, err = s.Feed(ctx, fresh.Session, FeedRequest{Chunk: "aaa bbb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Matches) != 1 || fr.Matches[0].Offset != 6 {
		t.Fatalf("v2 session matches = %+v, want only bbb@6", fr.Matches)
	}
	// One-shot matches after the swap serve v2 too.
	mr, err := s.Match(ctx, MatchRequest{Ruleset: "ids", Input: "aaa bbb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) != 1 || mr.Matches[0].Offset != 6 {
		t.Fatalf("one-shot matches after swap = %+v, want only bbb@6", mr.Matches)
	}
	if err := s.CloseSession(ctx, old.Session); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSession(ctx, fresh.Session); err != nil {
		t.Fatal(err)
	}
}

// TestHotReloadUnderLoad hammers one rule set with 64 concurrent clients
// (half one-shot matches, half streaming sessions) while a reloader swaps
// it ~20 times between two pattern sets. Every response must be exactly
// one version's complete match set — nothing dropped, nothing mixed —
// a session's feeds must stay on its admission version for its whole
// life, and after the dust settles every machine lease across every
// version's pools has been returned (Gets == Puts).
func TestHotReloadUnderLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, _ := testServer(t, Config{
		Registry:     reg,
		MatchWorkers: 8,
		QueueDepth:   1024,
		QueueWait:    10 * time.Second,
		MaxSessions:  256,
	})
	ctx := context.Background()
	reqA := CompileRequest{Patterns: []string{"aaa"}}
	reqB := CompileRequest{Patterns: []string{"aaa", "bbb"}}
	// The trailing space keeps repeated feeds of the same chunk from
	// matching across chunk boundaries (streams are continuous), so every
	// chunk's expected set is exactly one version's offsets.
	const input = "xx aaa bbb "
	// Per-version expected offset sets for one scan of input at base 0.
	wantA := []int64{5}
	wantB := []int64{5, 9}

	if _, err := s.Compile(ctx, "ids", reqA); err != nil {
		t.Fatal(err)
	}

	// Capture every version's automaton so the final lease audit sees the
	// pools of replaced rule sets too (the map swap drops them).
	var autMu sync.Mutex
	seen := make(map[*ca.Automaton]bool)
	var automatons []*ca.Automaton
	capture := func() {
		s.mu.RLock()
		a := s.rulesets["ids"].a
		s.mu.RUnlock()
		autMu.Lock()
		if !seen[a] {
			seen[a] = true
			automatons = append(automatons, a)
		}
		autMu.Unlock()
	}
	capture()

	// offsetsOK reports whether got is exactly one version's match set for
	// a scan of input starting at absolute position base.
	offsetsOK := func(got []WireMatch, base int64) bool {
		offs := make([]int64, len(got))
		for i, m := range got {
			offs[i] = m.Offset - base
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		eq := func(want []int64) bool {
			if len(offs) != len(want) {
				return false
			}
			for i := range want {
				if offs[i] != want[i] {
					return false
				}
			}
			return true
		}
		return eq(wantA) || eq(wantB)
	}

	stop := make(chan struct{})
	errc := make(chan error, 128)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup
	const clients = 64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c%2 == 0 {
					mr, err := s.Match(ctx, MatchRequest{Ruleset: "ids", Input: input})
					if err != nil {
						report("client %d match: %v", c, err)
						return
					}
					if !offsetsOK(mr.Matches, 0) {
						report("client %d match set %+v matches neither version", c, mr.Matches)
						return
					}
				} else {
					si, err := s.OpenSession(ctx, OpenSessionRequest{Ruleset: "ids"})
					if err != nil {
						report("client %d open: %v", c, err)
						return
					}
					// All feeds of one session must serve its admission
					// version: same per-chunk match count throughout.
					firstLen := -1
					base := int64(0)
					for f := 0; f < 3; f++ {
						fr, err := s.Feed(ctx, si.Session, FeedRequest{Chunk: input})
						if err != nil {
							report("client %d feed: %v", c, err)
							return
						}
						if !offsetsOK(fr.Matches, base) {
							report("client %d feed set %+v (base %d) matches neither version", c, fr.Matches, base)
							return
						}
						if firstLen == -1 {
							firstLen = len(fr.Matches)
						} else if len(fr.Matches) != firstLen {
							report("client %d session drifted versions mid-life: feed %d had %d matches, first had %d",
								c, f, len(fr.Matches), firstLen)
							return
						}
						base += int64(len(input))
					}
					if err := s.CloseSession(ctx, si.Session); err != nil {
						report("client %d close: %v", c, err)
						return
					}
				}
			}
		}(c)
	}

	const reloads = 20
	for i := 0; i < reloads; i++ {
		req := reqA
		if i%2 == 0 {
			req = reqB
		}
		if _, err := s.Reload(ctx, "ids", &req); err != nil {
			t.Errorf("reload %d: %v", i, err)
			break
		}
		capture()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if v := s.col.Reloads.Value(); v != reloads {
		t.Fatalf("reloads counter = %d, want %d", v, reloads)
	}
	ri, err := s.Ruleset("ids")
	if err != nil || ri.Version != reloads+1 {
		t.Fatalf("final version = %+v (err %v), want %d", ri, err, reloads+1)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	var gets, puts int64
	for _, a := range automatons {
		st := a.LeaseStats()
		gets += st.Gets
		puts += st.Puts
	}
	if gets != puts || gets == 0 {
		t.Fatalf("lease audit across %d versions: Gets=%d Puts=%d", len(automatons), gets, puts)
	}
}
