package server

import (
	"context"
	"encoding/base64"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"cacheautomaton/internal/difftest"
	"cacheautomaton/internal/faults"
	"cacheautomaton/internal/telemetry"
)

// batchedConfig is the standard batching-enabled test shape: a window
// short enough to keep tests fast but long enough that concurrent
// members actually coalesce.
func batchedConfig() Config {
	return Config{
		Registry:     telemetry.NewRegistry(),
		BatchWindow:  2 * time.Millisecond,
		BatchMax:     16,
		MatchWorkers: 4,
		QueueDepth:   256,
		QueueWait:    time.Minute,
	}
}

// matchTraced drives one in-process Match through the trace plumbing
// and returns the response and finished trace report.
func matchTraced(t *testing.T, s *Server, req MatchRequest) (*MatchResponse, *telemetry.ReqReport, error) {
	t.Helper()
	rt := s.newTrace("match")
	ctx := telemetry.WithReqTrace(context.Background(), rt)
	resp, err := s.Match(ctx, req)
	outcome, msg := outcomeOf(err)
	rep := s.finishTrace(rt, outcome, msg)
	return resp, rep, err
}

// TestMatchDifferentialBatched is the batching half of the serving
// differential harness: concurrent batched /match requests must agree
// with the per-request server AND the Go regexp oracle — bit-identical
// match sets with correct per-request offsets, even though any number
// of the requests shared one machine sweep.
func TestMatchDifferentialBatched(t *testing.T) {
	sBat, _ := testServer(t, batchedConfig())
	sRef, _ := testServer(t, Config{})
	g := difftest.New(11)
	cases := 12
	if testing.Short() {
		cases = 4
	}
	const members = 8
	for i := 0; i < cases; i++ {
		patterns := g.Patterns(3)
		oracle, err := difftest.NewOracle(patterns)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("d%d", i)
		for _, s := range []*Server{sBat, sRef} {
			if _, err := s.Compile(context.Background(), name, CompileRequest{Patterns: patterns}); err != nil {
				t.Fatalf("case %d compile: %v", i, err)
			}
		}
		inputs := make([][]byte, members)
		for m := range inputs {
			inputs[m] = g.Input(64 + 32*m + i)
		}
		// Fire all members concurrently so the batcher actually coalesces.
		got := make([][]difftest.Report, members)
		var wg sync.WaitGroup
		errs := make(chan error, members)
		for m := 0; m < members; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				resp, _, err := matchTraced(t, sBat, MatchRequest{
					Ruleset: name, InputB64: base64.StdEncoding.EncodeToString(inputs[m])})
				if err != nil {
					errs <- fmt.Errorf("member %d: %w", m, err)
					return
				}
				rep := make([]difftest.Report, len(resp.Matches))
				for j, mm := range resp.Matches {
					rep[j] = difftest.Report{Pattern: mm.Pattern, Offset: mm.Offset}
				}
				got[m] = rep
			}(m)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for m := 0; m < members; m++ {
			if d := difftest.Diff(oracle.Reports(inputs[m]), difftest.Set(got[m])); d != "" {
				t.Fatalf("case %d member %d: batched /match diverges from oracle\npatterns=%q\n%s",
					i, m, patterns, d)
			}
			refResp, err := sRef.Match(context.Background(), MatchRequest{
				Ruleset: name, InputB64: base64.StdEncoding.EncodeToString(inputs[m])})
			if err != nil {
				t.Fatal(err)
			}
			if len(refResp.Matches) != len(got[m]) {
				t.Fatalf("case %d member %d: batched %d matches, per-request %d",
					i, m, len(got[m]), len(refResp.Matches))
			}
			for j, mm := range refResp.Matches {
				if got[m][j] != (difftest.Report{Pattern: mm.Pattern, Offset: mm.Offset}) {
					t.Fatalf("case %d member %d match %d: batched %+v, per-request %+v",
						i, m, j, got[m][j], mm)
				}
			}
		}
	}
	if sBat.col.BatchedRequests.Value() == 0 {
		t.Fatal("no request was ever batched — the differential never exercised coalescing")
	}
	if st := sBat.LeaseStats(); st.Gets != st.Puts {
		t.Fatalf("lease imbalance after batched runs: gets %d puts %d", st.Gets, st.Puts)
	}
}

// TestBatchTraceSpan: a batched request's trace must carry a "batch"
// stage with the batch id, size, and wait attributes.
func TestBatchTraceSpan(t *testing.T) {
	s, _ := testServer(t, batchedConfig())
	if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
		t.Fatal(err)
	}
	input := smokeInput(rand.New(rand.NewSource(3)), 1024)
	_, rep, err := matchTraced(t, s, MatchRequest{Ruleset: "smoke", Input: string(input)})
	if err != nil {
		t.Fatal(err)
	}
	var batch *telemetry.StageReport
	for i := range rep.Stages {
		if rep.Stages[i].Name == "batch" {
			batch = &rep.Stages[i]
		}
	}
	if batch == nil {
		t.Fatalf("no batch stage in %+v", rep.Stages)
	}
	attrs := map[string]int64{}
	for _, a := range batch.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["batch_id"] < 1 || attrs["batch_size"] < 1 {
		t.Fatalf("batch stage attrs = %v, want batch_id and batch_size >= 1", attrs)
	}
	if _, ok := attrs["wait_us"]; !ok {
		t.Fatalf("batch stage attrs = %v, want wait_us", attrs)
	}
	if s.col.BatchSize.Count() == 0 || s.col.BatchWait.Count() == 0 {
		t.Fatal("batch histograms recorded nothing")
	}
}

// TestBatchBypass: oversize, sharded, and deadline-critical requests
// must take the per-request path untouched; with BatchWindow == 0 the
// batcher must not exist at all.
func TestBatchBypass(t *testing.T) {
	cfg := batchedConfig()
	cfg.BatchBytes = 512
	s, _ := testServer(t, cfg)
	if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
		t.Fatal(err)
	}
	big := smokeInput(rand.New(rand.NewSource(4)), 2048)
	small := big[:256]

	check := func(s *Server, label string, req MatchRequest, ctx context.Context) *telemetry.ReqReport {
		t.Helper()
		rt := s.newTrace("match")
		resp, err := s.Match(telemetry.WithReqTrace(ctx, rt), req)
		rep := s.finishTrace(rt, "ok", "")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if resp == nil {
			t.Fatalf("%s: nil response", label)
		}
		for _, st := range rep.Stages {
			if st.Name == "batch" {
				t.Fatalf("%s: request was batched, want bypass", label)
			}
		}
		return rep
	}

	check(s, "oversize", MatchRequest{Ruleset: "smoke", Input: string(big)}, context.Background())
	check(s, "sharded", MatchRequest{Ruleset: "smoke", Input: string(small), Shards: 2}, context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), cfg.BatchWindow*3)
	defer cancel()
	check(s, "deadline-critical", MatchRequest{Ruleset: "smoke", Input: string(small)}, ctx)
	if n := s.col.BatchedRequests.Value(); n != 0 {
		t.Fatalf("%d requests were batched, want 0", n)
	}

	// BatchWindow == 0: no batcher is even constructed.
	sOff, _ := testServer(t, Config{})
	if _, err := sOff.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
		t.Fatal(err)
	}
	sOff.mu.RLock()
	b := sOff.rulesets["smoke"].b
	sOff.mu.RUnlock()
	if b != nil {
		t.Fatal("batcher exists with BatchWindow == 0")
	}
	rep := check(sOff, "window-off", MatchRequest{Ruleset: "smoke", Input: string(small)}, context.Background())
	names := make([]string, len(rep.Stages))
	for i, st := range rep.Stages {
		names[i] = st.Name
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[lease queue run]" {
		t.Fatalf("window-off stages = %v, want the per-request [lease queue run]", names)
	}
}

// TestBatchMemberFaultIsolation: with the server.batch.flush seam
// firing errors and panics on roughly half the members, every failed
// member gets a structured 500, every surviving member's match set is
// still bit-identical to the per-request reference, nothing is dropped
// or duplicated, and the machine pool stays balanced.
func TestBatchMemberFaultIsolation(t *testing.T) {
	for _, kind := range []struct {
		name string
		k    faults.Kind
	}{{"error", faults.KindError}, {"panic", faults.KindPanic}} {
		t.Run(kind.name, func(t *testing.T) {
			s, _ := testServer(t, batchedConfig())
			if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
				t.Fatal(err)
			}
			ref, _ := testServer(t, Config{})
			if _, err := ref.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
				t.Fatal(err)
			}
			const members = 32
			inputs := make([][]byte, members)
			want := make([][]WireMatch, members)
			for m := range inputs {
				inputs[m] = smokeInput(rand.New(rand.NewSource(int64(m)*131+9)), 1024)
				resp, err := ref.Match(context.Background(), MatchRequest{Ruleset: "smoke", Input: string(inputs[m])})
				if err != nil {
					t.Fatal(err)
				}
				want[m] = resp.Matches
			}

			in := faults.NewInjector(0xBA7C, map[string]faults.Rule{
				"server.batch.flush": {Rate: 0.5, Kinds: kind.k},
			})
			faults.Enable(in)
			defer faults.Disable()

			var wg sync.WaitGroup
			var mu sync.Mutex
			failed, ok := 0, 0
			for m := 0; m < members; m++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					resp, err := s.Match(context.Background(), MatchRequest{Ruleset: "smoke", Input: string(inputs[m])})
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						if statusOf(err) != 500 {
							t.Errorf("member %d: status %d, want 500", m, statusOf(err))
						}
						failed++
						return
					}
					ok++
					if len(resp.Matches) != len(want[m]) {
						t.Errorf("member %d: %d matches, want %d", m, len(resp.Matches), len(want[m]))
						return
					}
					for j := range want[m] {
						if resp.Matches[j] != want[m][j] {
							t.Errorf("member %d match %d: %+v, want %+v", m, j, resp.Matches[j], want[m][j])
							return
						}
					}
				}(m)
			}
			wg.Wait()
			faults.Disable()
			if failed == 0 || ok == 0 {
				t.Fatalf("fault mix did not split the batch: %d failed, %d ok", failed, ok)
			}
			if kind.k == faults.KindPanic && s.col.Panics.Value() == 0 {
				t.Fatal("panic kind fired but Panics counter is zero")
			}
			if st := s.LeaseStats(); st.Gets != st.Puts {
				t.Fatalf("lease imbalance: gets %d puts %d", st.Gets, st.Puts)
			}
			t.Logf("%s: %d failed, %d ok, batched %d", kind.name, failed, ok, s.col.BatchedRequests.Value())
		})
	}
}

// batchLoad drives clients×perClient small requests and returns the
// round's wall time (the batched analogue of matchLoad's shape).
func batchLoad(t *testing.T, s *Server, clients, perClient int, input []byte) time.Duration {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := s.Match(context.Background(), MatchRequest{Ruleset: "smoke", Input: string(input)}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestBatchedThroughputSmoke is the CI bench-smoke for the coalescer:
// on the 64-client 1KB shape, the batched server must beat the
// per-request server by at least 3x. Min-of-N rounds with alternating
// order and one retry, exactly like TestFlightRecorderOverhead, so a
// noise spike on a shared runner cannot decide the verdict.
func TestBatchedThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing assertion; skipped under the race detector")
	}
	clients, perClient, rounds := 64, 32, 5
	input := smokeInput(rand.New(rand.NewSource(2)), 1024)

	mk := func(batched bool) *Server {
		cfg := Config{
			Registry:      telemetry.NewRegistry(),
			TraceRingSize: -1,
			MatchWorkers:  8,
			QueueDepth:    2 * clients,
			QueueWait:     time.Minute,
		}
		if batched {
			cfg.BatchWindow = time.Millisecond
			cfg.BatchMax = 64
		}
		s := New(cfg)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
		if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched := mk(true)
	perReq := mk(false)

	batchLoad(t, batched, clients, 2, input)
	batchLoad(t, perReq, clients, 2, input)

	measure := func() float64 {
		var bat, per []float64
		for r := 0; r < rounds; r++ {
			if r%2 == 0 {
				bat = append(bat, batchLoad(t, batched, clients, perClient, input).Seconds())
				per = append(per, batchLoad(t, perReq, clients, perClient, input).Seconds())
			} else {
				per = append(per, batchLoad(t, perReq, clients, perClient, input).Seconds())
				bat = append(bat, batchLoad(t, batched, clients, perClient, input).Seconds())
			}
		}
		best := func(v []float64) float64 {
			s := append([]float64(nil), v...)
			sort.Float64s(s)
			return s[0]
		}
		speedup := best(per) / best(bat)
		t.Logf("batched %.4fs per-request %.4fs speedup %.2fx", best(bat), best(per), speedup)
		return speedup
	}
	speedup := measure()
	if speedup < 3 {
		speedup = measure()
	}
	if speedup < 3 {
		t.Fatalf("batched serving speedup %.2fx < 3x floor after retry", speedup)
	}
	if batched.col.BatchedRequests.Value() == 0 {
		t.Fatal("batched server never batched anything")
	}
}

// BenchmarkBatchedServing10k is the acceptance benchmark: 10k
// concurrent 1KB /match requests against one rule set, batched vs
// per-request. cmd/cabench -clients reproduces this shape out of
// process; results/batched-serving.json holds the committed snapshot.
func BenchmarkBatchedServing10k(b *testing.B) {
	const concurrent, payload = 10000, 1024
	input := smokeInput(rand.New(rand.NewSource(2)), payload)
	mk := func(batched bool) *Server {
		cfg := Config{
			Registry:      telemetry.NewRegistry(),
			TraceRingSize: -1,
			MatchWorkers:  8,
			QueueDepth:    2 * concurrent,
			QueueWait:     time.Minute,
		}
		if batched {
			cfg.BatchWindow = time.Millisecond
			cfg.BatchMax = 256
			cfg.BatchBytes = 256 << 10
		}
		s := New(cfg)
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
		if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
			b.Fatal(err)
		}
		return s
	}
	run := func(b *testing.B, s *Server) {
		in := string(input)
		b.SetBytes(concurrent * payload)
		for i := 0; i < b.N; i++ {
			// Spawn the 10k clients outside the timed region and release
			// them together: the measurement is the server draining 10k
			// concurrent requests, not the runtime creating goroutines.
			b.StopTimer()
			start := make(chan struct{})
			var ready, done sync.WaitGroup
			ready.Add(concurrent)
			done.Add(concurrent)
			for c := 0; c < concurrent; c++ {
				go func() {
					defer done.Done()
					ready.Done()
					<-start
					if _, err := s.Match(context.Background(), MatchRequest{Ruleset: "smoke", Input: in}); err != nil {
						b.Error(err)
					}
				}()
			}
			ready.Wait()
			b.StartTimer()
			close(start)
			done.Wait()
		}
	}
	b.Run("per-request", func(b *testing.B) { run(b, mk(false)) })
	b.Run("batched", func(b *testing.B) { run(b, mk(true)) })
}
