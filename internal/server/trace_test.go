package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"cacheautomaton/internal/telemetry"
)

// getTrace fetches one trace by id from /debug/requests.
func getTrace(t *testing.T, url, id string) (*telemetry.ReqReport, int) {
	t.Helper()
	var rep telemetry.ReqReport
	code := doJSON(t, "GET", url+"/debug/requests?id="+id, nil, &rep)
	if code != 200 {
		return nil, code
	}
	return &rep, code
}

func stageNames(rep *telemetry.ReqReport) []string {
	var out []string
	for _, s := range rep.Stages {
		out = append(out, s.Name)
	}
	return out
}

func TestMatchTraceEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := testServer(t, Config{Registry: reg})
	compileRules(t, ts, "ids", "needle")

	req, _ := http.NewRequest("POST", ts.URL+"/match",
		strings.NewReader(`{"ruleset":"ids","input":"find the needle here"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-CA-Trace-Id")
	if id == "" {
		t.Fatal("no X-CA-Trace-Id header on /match")
	}

	rep, code := getTrace(t, ts.URL, id)
	if code != 200 {
		t.Fatalf("debug lookup status %d", code)
	}
	if rep.Op != "match" || rep.Outcome != "ok" || rep.Ruleset != "ids" {
		t.Fatalf("trace = op %q outcome %q ruleset %q", rep.Op, rep.Outcome, rep.Ruleset)
	}
	got := strings.Join(stageNames(rep), ",")
	for _, stage := range []string{"queue", "lease", "run"} {
		if !strings.Contains(got, stage) {
			t.Fatalf("stages = %s, missing %q", got, stage)
		}
	}

	// The same trace renders as text.
	httpReq, _ := http.NewRequest("GET", ts.URL+"/debug/requests?id="+id+"&format=text", nil)
	txtResp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer txtResp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := txtResp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(b.String(), id) || !strings.Contains(b.String(), "run") {
		t.Fatalf("text format missing id/stages:\n%s", b.String())
	}

	// The full snapshot lists it under recent.
	var snap telemetry.RingSnapshot
	if code := doJSON(t, "GET", ts.URL+"/debug/requests", nil, &snap); code != 200 {
		t.Fatalf("snapshot status %d", code)
	}
	found := false
	for _, r := range snap.Recent {
		if r.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatal("completed trace not in /debug/requests recent section")
	}

	// Per-stage and per-ruleset histograms moved.
	for _, stage := range []string{"queue", "lease", "run"} {
		if s.col.StageSeconds.With(stage).Count() == 0 {
			t.Fatalf("ca_server_stage_seconds{stage=%q} empty", stage)
		}
	}
	if s.col.RulesetSeconds.With("ids").Count() == 0 {
		t.Fatal("ca_server_ruleset_seconds{ruleset=\"ids\"} empty")
	}
}

func TestMatchDebugInlinesTrace(t *testing.T) {
	_, ts := testServer(t, Config{Registry: telemetry.NewRegistry()})
	compileRules(t, ts, "ids", "needle")
	var mr MatchResponse
	if code := doJSON(t, "POST", ts.URL+"/match?debug=1",
		MatchRequest{Ruleset: "ids", Input: "a needle"}, &mr); code != 200 {
		t.Fatalf("match status %d", code)
	}
	if mr.Trace == nil || mr.Trace.Op != "match" || mr.Trace.Outcome != "ok" {
		t.Fatalf("inlined trace = %+v", mr.Trace)
	}
	// Without ?debug=1 the trace stays out of the body.
	var raw map[string]json.RawMessage
	if code := doJSON(t, "POST", ts.URL+"/match",
		MatchRequest{Ruleset: "ids", Input: "a needle"}, &raw); code != 200 {
		t.Fatal("match failed")
	}
	if _, ok := raw["trace"]; ok {
		t.Fatal("trace inlined without ?debug=1")
	}
}

func TestTracingDisabled(t *testing.T) {
	s, ts := testServer(t, Config{Registry: telemetry.NewRegistry(), TraceRingSize: -1})
	compileRules(t, ts, "ids", "needle")
	if s.Ring() != nil {
		t.Fatal("ring built despite TraceRingSize < 0")
	}
	req, _ := http.NewRequest("POST", ts.URL+"/match",
		strings.NewReader(`{"ruleset":"ids","input":"needle"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CA-Trace-Id"); got != "" {
		t.Fatalf("trace header %q with tracing disabled", got)
	}
	if code := doJSON(t, "GET", ts.URL+"/debug/requests", nil, nil); code != 404 {
		t.Fatalf("/debug/requests status %d with tracing disabled, want 404", code)
	}
}

// TestErrorTracePinned checks a failed request's trace survives a flood
// of healthy traffic because the ring pins non-ok outcomes.
func TestErrorTracePinned(t *testing.T) {
	_, ts := testServer(t, Config{Registry: telemetry.NewRegistry(), TraceRingSize: 4})
	compileRules(t, ts, "ids", "needle")

	req, _ := http.NewRequest("POST", ts.URL+"/match",
		strings.NewReader(`{"ruleset":"nope","input":"x"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown ruleset status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-CA-Trace-Id")
	if id == "" {
		t.Fatal("failed request carries no trace id")
	}
	for i := 0; i < 20; i++ {
		doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "needle"}, nil)
	}
	rep, code := getTrace(t, ts.URL, id)
	if code != 200 {
		t.Fatalf("pinned error trace evicted (status %d)", code)
	}
	if rep.Outcome != "error" || rep.Error == "" {
		t.Fatalf("trace outcome = %q error = %q", rep.Outcome, rep.Error)
	}

	// An unknown id is a structured 404.
	if _, code := getTrace(t, ts.URL, "bogus-id"); code != 404 {
		t.Fatalf("bogus id status %d", code)
	}
}

// TestTimeoutTraceOutcome checks a deadline-expired match is classified
// "timeout", not generic "error", and is explainable post-hoc.
func TestTimeoutTraceOutcome(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry(), RequestTimeout: time.Nanosecond})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	rt := s.newTrace("match")
	ctx := telemetry.WithReqTrace(context.Background(), rt)
	_, err := s.Match(ctx, MatchRequest{Ruleset: "ids", Input: strings.Repeat("x", 1<<20)})
	if err == nil {
		t.Fatal("1ns deadline match succeeded")
	}
	outcome, _ := outcomeOf(err)
	s.finishTrace(rt, outcome, err.Error())
	rep := s.Ring().Find(rt.ID())
	if rep == nil {
		t.Fatal("timeout trace not retained")
	}
	if rep.Outcome != "timeout" {
		t.Fatalf("outcome = %q, want timeout", rep.Outcome)
	}
}

// TestSessionTraceStages checks open/feed/suspend record wal spans and
// the ruleset on their traces.
func TestSessionTraceStages(t *testing.T) {
	s, ts := testServer(t, Config{Registry: telemetry.NewRegistry()})
	compileRules(t, ts, "ids", "needle")
	dir := t.TempDir()
	if _, err := s.AttachWAL(dir); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/sessions",
		strings.NewReader(`{"ruleset":"ids"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var open SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	openID := resp.Header.Get("X-CA-Trace-Id")

	feedReq, _ := http.NewRequest("POST", ts.URL+"/sessions/"+open.Session+"/feed",
		strings.NewReader(`{"chunk":"a needle"}`))
	feedResp, err := http.DefaultClient.Do(feedReq)
	if err != nil {
		t.Fatal(err)
	}
	feedResp.Body.Close()
	feedID := feedResp.Header.Get("X-CA-Trace-Id")

	for name, id := range map[string]string{"open": openID, "feed": feedID} {
		rep, code := getTrace(t, ts.URL, id)
		if code != 200 {
			t.Fatalf("%s trace not retained", name)
		}
		if rep.Ruleset != "ids" {
			t.Fatalf("%s trace ruleset = %q", name, rep.Ruleset)
		}
		if !strings.Contains(strings.Join(stageNames(rep), ","), "wal") {
			t.Fatalf("%s trace stages = %v, want a wal span (WAL attached)", name, stageNames(rep))
		}
	}
}

// TestTCPTraceID checks the TCP transport carries the trace id in its
// response envelope, for both ok and error lines.
func TestTCPTraceID(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	tcp := &TCPServer{s: s}

	out := tcp.dispatch(context.Background(), []byte(`{"op":"match","ruleset":"ids","input":"a needle"}`))
	ok, isOK := out.(tcpOK)
	if !isOK || ok.TraceID == "" {
		t.Fatalf("tcp ok response = %#v, want trace id", out)
	}
	if rep := s.Ring().Find(ok.TraceID); rep == nil || rep.Op != "tcp.match" {
		t.Fatalf("tcp trace %q not retrievable", ok.TraceID)
	}

	out = tcp.dispatch(context.Background(), []byte(`{"op":"match","ruleset":"nope"}`))
	fail, isErr := out.(tcpErr)
	if !isErr || fail.TraceID == "" {
		t.Fatalf("tcp error response = %#v, want trace id", out)
	}
	if rep := s.Ring().Find(fail.TraceID); rep == nil || rep.Outcome != "error" {
		t.Fatalf("tcp error trace %q not pinned", fail.TraceID)
	}
}

// TestSlowRequestCounter checks the slow threshold feeds
// ca_server_slow_requests_total and pins the trace.
func TestSlowRequestCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := testServer(t, Config{Registry: reg, SlowRequest: time.Nanosecond})
	compileRules(t, ts, "ids", "needle")
	var mr MatchResponse
	if code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "needle"}, &mr); code != 200 {
		t.Fatalf("match status %d", code)
	}
	if s.col.SlowRequests.Value() == 0 {
		t.Fatal("ca_server_slow_requests_total did not move with a 1ns threshold")
	}
	snap := s.Ring().Snapshot()
	if len(snap.Pinned) == 0 {
		t.Fatal("slow trace not pinned")
	}
}
