package server

import (
	"context"
	"encoding/base64"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	ca "cacheautomaton"
	"cacheautomaton/internal/telemetry"
)

var smokePatterns = []string{"needle[0-9]", "hay.{2}stack", "x[abc]+y"}

// smokeInput builds a deterministic input salted with pattern hits.
func smokeInput(rng *rand.Rand, n int) []byte {
	const filler = "abcdefghij xyz 0123456789 haystack "
	buf := make([]byte, 0, n+16)
	for len(buf) < n {
		if rng.Intn(4) == 0 {
			switch rng.Intn(3) {
			case 0:
				buf = append(buf, fmt.Sprintf("needle%d", rng.Intn(10))...)
			case 1:
				buf = append(buf, "hay..stack"...)
			default:
				buf = append(buf, "xabcacby"...)
			}
		} else {
			i := rng.Intn(len(filler) - 8)
			buf = append(buf, filler[i:i+8]...)
		}
	}
	return buf[:n]
}

// TestLoadSmoke64Clients is the acceptance load test: 64 concurrent
// clients — a mix of one-shot matchers (sequential and sharded) and
// streaming sessions (some migrating mid-stream via suspend/resume) —
// must each receive a match set identical to the sequential Run
// reference computed on a private Automaton.
func TestLoadSmoke64Clients(t *testing.T) {
	clients := 64
	inputLen := 4096
	if testing.Short() {
		clients = 16
		inputLen = 1024
	}

	_, ts := testServer(t, Config{})
	compileRules(t, ts, "smoke", smokePatterns...)

	// Sequential reference on an automaton the server never touches.
	ref, err := ca.CompileRegex(smokePatterns, ca.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			input := smokeInput(rng, inputLen)
			want, _, err := ref.Run(input)
			if err != nil {
				errs <- fmt.Errorf("client %d: reference: %v", c, err)
				return
			}
			var got []WireMatch
			switch c % 4 {
			case 0, 1: // one-shot, sequential and sharded
				req := MatchRequest{Ruleset: "smoke", InputB64: base64.StdEncoding.EncodeToString(input)}
				if c%4 == 1 {
					req.Shards = 1 + rng.Intn(4)
				}
				var resp MatchResponse
				if code := doJSON(t, "POST", ts.URL+"/match", req, &resp); code != 200 {
					errs <- fmt.Errorf("client %d: match status %d", c, code)
					return
				}
				got = resp.Matches
			default: // streaming session, random chunking
				migrate := c%4 == 3
				var sess SessionInfo
				if code := doJSON(t, "POST", ts.URL+"/sessions", OpenSessionRequest{Ruleset: "smoke"}, &sess); code != 200 {
					errs <- fmt.Errorf("client %d: open status %d", c, code)
					return
				}
				for pos := 0; pos < len(input); {
					n := 1 + rng.Intn(512)
					if pos+n > len(input) {
						n = len(input) - pos
					}
					var feed FeedResponse
					fr := FeedRequest{ChunkB64: base64.StdEncoding.EncodeToString(input[pos : pos+n])}
					if code := doJSON(t, "POST", ts.URL+"/sessions/"+sess.Session+"/feed", fr, &feed); code != 200 {
						errs <- fmt.Errorf("client %d: feed status %d", c, code)
						return
					}
					got = append(got, feed.Matches...)
					pos += n
					if migrate && pos > len(input)/2 {
						migrate = false
						var susp SuspendResponse
						if code := doJSON(t, "POST", ts.URL+"/sessions/"+sess.Session+"/suspend", nil, &susp); code != 200 {
							errs <- fmt.Errorf("client %d: suspend status %d", c, code)
							return
						}
						if code := doJSON(t, "POST", ts.URL+"/sessions", OpenSessionRequest{Ruleset: "smoke", SnapshotB64: susp.SnapshotB64}, &sess); code != 200 {
							errs <- fmt.Errorf("client %d: resume status %d", c, code)
							return
						}
					}
				}
				doJSON(t, "DELETE", ts.URL+"/sessions/"+sess.Session, nil, nil)
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("client %d (mode %d): %d matches, reference has %d", c, c%4, len(got), len(want))
				return
			}
			for i := range got {
				if got[i].Offset != want[i].Offset || got[i].Pattern != want[i].Pattern {
					errs <- fmt.Errorf("client %d: match %d = %+v, reference %+v", c, i, got[i], want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDrainDoesNotDropMatches starts streaming clients, shuts the server
// down mid-stream, and checks every client's received matches equal the
// sequential reference over exactly the prefix it successfully fed: a
// feed that returned 200 delivered all its matches even while the drain
// was racing it, and no 200 was lost.
func TestDrainDoesNotDropMatches(t *testing.T) {
	clients := 16
	s := New(Config{Registry: telemetry.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Compile(context.Background(), "smoke", CompileRequest{Patterns: smokePatterns}); err != nil {
		t.Fatal(err)
	}
	ref, err := ca.CompileRegex(smokePatterns, ca.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var started sync.WaitGroup
	started.Add(clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			signaled := false
			signal := func() {
				if !signaled {
					signaled = true
					started.Done()
				}
			}
			defer signal()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			input := smokeInput(rng, 1<<20)
			var sess SessionInfo
			if code := doJSON(t, "POST", ts.URL+"/sessions", OpenSessionRequest{Ruleset: "smoke"}, &sess); code != 200 {
				errs <- fmt.Errorf("client %d: open status %d", c, code)
				return
			}
			var got []WireMatch
			fed := int64(0)
			for pos := 0; pos < len(input); {
				n := 256 + rng.Intn(1024)
				if pos+n > len(input) {
					n = len(input) - pos
				}
				var feed FeedResponse
				fr := FeedRequest{ChunkB64: base64.StdEncoding.EncodeToString(input[pos : pos+n])}
				code := doJSON(t, "POST", ts.URL+"/sessions/"+sess.Session+"/feed", fr, &feed)
				if code != 200 {
					if code != 503 && code != 404 && code != 409 {
						errs <- fmt.Errorf("client %d: feed during drain: status %d", c, code)
					}
					break
				}
				got = append(got, feed.Matches...)
				fed = feed.Pos
				pos += n
				if pos >= 2048 {
					signal() // mid-stream: safe to start draining
				}
			}
			// Every match the reference finds in the fed prefix must have
			// been delivered, and nothing else.
			want, _, err := ref.Run(input[:fed])
			if err != nil {
				errs <- fmt.Errorf("client %d: reference: %v", c, err)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("client %d: drained with %d matches over %d fed bytes, reference has %d", c, len(got), fed, len(want))
				return
			}
			for i := range got {
				if got[i].Offset != want[i].Offset || got[i].Pattern != want[i].Pattern {
					errs <- fmt.Errorf("client %d: match %d = %+v, reference %+v", c, i, got[i], want[i])
					return
				}
			}
		}(c)
	}

	started.Wait() // all clients are mid-stream
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := len(s.Sessions()); n != 0 {
		t.Errorf("%d sessions survived drain", n)
	}
}
