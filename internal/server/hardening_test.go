package server

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cacheautomaton/internal/telemetry"
)

// TestSessionsVsCloseNoDeadlock is the regression test for a lock-order
// inversion: Sessions() used to take sess.mu while holding Server.mu
// (RLock), while removeSession takes Server.mu (Lock) with sess.mu held.
// A queued RWMutex writer blocks new readers, so a listing racing a
// session close wedged the whole server within a few thousand
// iterations. The watchdog dumps all stacks on a hang instead of letting
// the test binary time out silently.
func TestSessionsVsCloseNoDeadlock(t *testing.T) {
	s := New(Config{Registry: telemetry.NewRegistry(), SessionIdle: -1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if _, err := s.Compile(context.Background(), "r", CompileRequest{Patterns: []string{"abc"}}); err != nil {
		t.Fatal(err)
	}

	// Each closer worker keeps a batch of sessions open and closes them
	// while the listers iterate: the bigger the session table, the longer
	// the (buggy) Sessions() held Server.mu while chasing sess.mu, which
	// is what made the inversion bite.
	const (
		workers = 4
		batch   = 16
		iters   = 400
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ids := make([]string, 0, batch)
				for i := 0; i < iters; i++ {
					ids = ids[:0]
					for j := 0; j < batch; j++ {
						info, err := s.OpenSession(context.Background(), OpenSessionRequest{Ruleset: "r"})
						if err != nil {
							t.Error(err)
							return
						}
						ids = append(ids, info.Session)
					}
					for _, id := range ids {
						if err := s.CloseSession(context.Background(), id); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < workers*batch*iters; i++ {
					s.Sessions()
				}
			}()
		}
		wg.Wait()
	}()

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("deadlock: Sessions racing CloseSession wedged the server\n%s",
			buf[:runtime.Stack(buf, true)])
	}
}

// TestMatchShardsClamped verifies the server clamps a client-requested
// shard count to Config.MaxShards instead of letting one request demand
// an arbitrary number of simulator machines, and that the clamped run
// still reports the same matches as the sequential reference.
func TestMatchShardsClamped(t *testing.T) {
	s := New(Config{Registry: telemetry.NewRegistry(), MaxShards: 2, SessionIdle: -1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if _, err := s.Compile(context.Background(), "r", CompileRequest{Patterns: []string{"abc"}}); err != nil {
		t.Fatal(err)
	}
	input := strings.Repeat("xx abc yy ", 4096)
	ref, err := s.Match(context.Background(), MatchRequest{Ruleset: "r", Input: input})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Match(context.Background(), MatchRequest{Ruleset: "r", Input: input, Shards: 1 << 20})
	if err != nil {
		t.Fatalf("absurd shard request must be clamped and served, got %v", err)
	}
	if len(got.Matches) != len(ref.Matches) {
		t.Fatalf("clamped sharded run: %d matches, sequential reference: %d",
			len(got.Matches), len(ref.Matches))
	}
	for i := range got.Matches {
		if got.Matches[i] != ref.Matches[i] {
			t.Fatalf("match %d: sharded %+v != reference %+v", i, got.Matches[i], ref.Matches[i])
		}
	}
}

// TestTCPConnShutdownClaim pins the drain handshake: a request line that
// Scan read before Shutdown claimed the conn must NOT execute (its
// response channel is gone — executing a suspend there would destroy the
// only copy of the snapshot), and a conn that is mid-request must not be
// closed under the executing op.
func TestTCPConnShutdownClaim(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// Idle conn: Shutdown claims it; a line already in hand must be dropped.
	idle := &tcpConn{Conn: a}
	idle.closeIfIdle()
	if idle.beginRequest() {
		t.Fatal("beginRequest succeeded on a conn Shutdown already claimed")
	}
	if _, err := idle.Write([]byte("x")); err == nil {
		t.Fatal("claimed idle conn was not closed")
	}

	// Busy conn: closeIfIdle must skip it and leave it writable.
	busy := &tcpConn{Conn: b}
	if !busy.beginRequest() {
		t.Fatal("beginRequest refused on a fresh conn")
	}
	busy.closeIfIdle()
	if closing := busy.endRequest(); closing {
		t.Fatal("closeIfIdle claimed a busy conn")
	}

	// After the in-flight request finishes, the next sweep may claim it.
	busy.closeIfIdle()
	if busy.beginRequest() {
		t.Fatal("beginRequest succeeded after Shutdown claimed the drained conn")
	}
}
