package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"cacheautomaton/internal/faults"
	"cacheautomaton/internal/telemetry"
)

// The session write-ahead log makes the serving state survive kill -9:
// every ruleset compile and every session state change appends a
// checksummed record, and a restarting server replays the log to
// recompile its rule sets and resume its sessions bit-identically (the
// paper's §2.9 suspend/resume state vector is tiny, which is what makes
// checkpoint-per-feed affordable).
//
// On-disk format (DESIGN.md "WAL record format"): a file header
// "CAWAL001", then records framed as
//
//	u32 LE payload length | u32 LE CRC-32C of payload | payload
//
// where payload is one JSON-encoded walRecord. CRC + length framing
// makes a torn tail (the crash landed mid-write) detectable: replay
// stops at the first record that fails its checksum or runs past EOF,
// keeping the valid prefix. Appends go straight to the file descriptor
// (no userspace buffering), so every record that was acknowledged
// before a process kill is in the page cache and survives it.
//
// The WAL keeps an in-memory map of the latest record per key (ruleset
// name or session id). Compaction — at open, and whenever the file
// exceeds maxBytes — rewrites just that live set to a temp file and
// atomically renames it over the log, so the file is bounded by the
// live state, not by history.

// walMagic is the WAL file header.
var walMagic = [8]byte{'C', 'A', 'W', 'A', 'L', '0', '0', '1'}

// walDefaultMaxBytes triggers compaction when the log file outgrows it.
const walDefaultMaxBytes = 16 << 20

// walRecord is one WAL entry. Kind selects which fields are set.
type walRecord struct {
	// Kind is "compile", "delete", "checkpoint", "close" or "nextid".
	Kind string `json:"kind"`
	// Name is the ruleset name (compile, delete).
	Name string `json:"name,omitempty"`
	// Req is the original compile request (compile) — replay recompiles
	// from it, which with a fixed Seed reproduces the same placement.
	Req *CompileRequest `json:"req,omitempty"`
	// ID is the session id (checkpoint, close).
	ID string `json:"id,omitempty"`
	// Ruleset is the session's ruleset name (checkpoint).
	Ruleset string `json:"ruleset,omitempty"`
	// SnapB64 is the session's serialized architectural state
	// (checkpoint) — the same bytes Stream.Suspend writes.
	SnapB64 string `json:"snap_b64,omitempty"`
	// NextID is the session-counter high-water mark (nextid). It has its
	// own record (not a checkpoint field) because a closed session's
	// tombstone erases its checkpoint at compaction — without this, a
	// restart could re-issue a dead session's id to a new client.
	NextID uint64 `json:"next_id,omitempty"`
}

// key returns the live-map key a record supersedes (or deletes), and
// whether the record is a tombstone. Records with no key (unknown
// kinds) are dropped at compaction.
func (r *walRecord) key() (key string, tombstone bool) {
	switch r.Kind {
	case "compile":
		return "r/" + r.Name, false
	case "delete":
		return "r/" + r.Name, true
	case "checkpoint":
		return "s/" + r.ID, false
	case "close":
		return "s/" + r.ID, true
	case "nextid":
		return "n/next", false
	}
	return "", false
}

// wal is the per-server write-ahead log. All methods are safe for
// concurrent use; the mutex is a leaf lock (nothing is acquired under
// it), so callers may hold session or server locks when appending.
type wal struct {
	col *telemetry.ServerCollector

	mu       sync.Mutex
	path     string
	f        *os.File
	size     int64
	maxBytes int64
	failed   bool
	// live holds the latest encoded payload per key; compaction rewrites
	// exactly this set (rulesets before sessions, so replay order works).
	live map[string][]byte
}

// openWAL opens (creating if needed) the session WAL in dir, replays
// its valid prefix, compacts it, and returns the log ready for appends
// plus the live records in replay order (rulesets first). maxBytes <= 0
// uses the default compaction threshold.
func openWAL(dir string, maxBytes int64, col *telemetry.ServerCollector) (*wal, []walRecord, error) {
	if maxBytes <= 0 {
		maxBytes = walDefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	w := &wal{
		col:      col,
		path:     filepath.Join(dir, "session.wal"),
		maxBytes: maxBytes,
		live:     make(map[string][]byte),
	}
	if data, err := os.ReadFile(w.path); err == nil {
		for _, payload := range walScan(data) {
			var rec walRecord
			if json.Unmarshal(payload, &rec) != nil {
				continue
			}
			w.apply(&rec, payload)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs := w.liveRecords()
	// Rewrite just the live set: bounds the file across restarts and
	// leaves a clean, torn-tail-free log behind.
	if err := w.compactLocked(); err != nil {
		return nil, nil, err
	}
	return w, recs, nil
}

// walScan returns the payloads of the valid record prefix of data.
func walScan(data []byte) [][]byte {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic[:]) {
		return nil
	}
	data = data[len(walMagic):]
	var out [][]byte
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data)
		sum := binary.LittleEndian.Uint32(data[4:])
		if n > 1<<30 || int(n) > len(data)-8 {
			break // torn tail: length runs past EOF
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt record: stop at the valid prefix
		}
		out = append(out, payload)
		data = data[8+n:]
	}
	return out
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// apply folds one record into the live map (caller holds mu or has
// exclusive access).
func (w *wal) apply(rec *walRecord, payload []byte) {
	key, tombstone := rec.key()
	if key == "" {
		return
	}
	if tombstone {
		delete(w.live, key)
		return
	}
	w.live[key] = append([]byte(nil), payload...)
}

// liveRecords decodes the live map in replay order: the session-counter
// mark, every ruleset record, then every session checkpoint.
func (w *wal) liveRecords() []walRecord {
	var recs []walRecord
	for _, prefix := range []string{"n/", "r/", "s/"} {
		for key, payload := range w.live {
			if len(key) < 2 || key[:2] != prefix {
				continue
			}
			var rec walRecord
			if json.Unmarshal(payload, &rec) == nil {
				recs = append(recs, rec)
			}
		}
	}
	return recs
}

// Append encodes and durably appends one record. Injected faults (the
// "server.wal.append" point) fail before any byte is written, so the
// log stays consistent and the caller may simply continue — the next
// checkpoint supersedes the lost one. A real partial write is repaired
// by truncating back to the last record boundary; if even that fails
// the WAL fail-stops (appends error out, serving continues).
func (w *wal) Append(rec walRecord) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed {
		return fmt.Errorf("wal: fail-stopped after an earlier write error")
	}
	if err := faults.Check("server.wal.append"); err != nil {
		if w.col != nil {
			w.col.WALErrors.Inc()
		}
		return err
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(frame[:]); err != nil {
		return w.writeFailed(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return w.writeFailed(err)
	}
	w.size += int64(8 + len(payload))
	w.apply(&rec, payload)
	if w.col != nil {
		w.col.WALRecords.Inc()
	}
	if w.size > w.maxBytes {
		if err := w.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// writeFailed repairs a partial append by truncating to the last record
// boundary, or fail-stops the WAL if the file cannot be repaired.
func (w *wal) writeFailed(err error) error {
	if w.col != nil {
		w.col.WALErrors.Inc()
	}
	if terr := w.f.Truncate(w.size); terr != nil {
		w.failed = true
	} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
		w.failed = true
	}
	return fmt.Errorf("wal: append: %w", err)
}

// compactLocked rewrites the live set to a temp file and atomically
// renames it over the log. Caller holds mu (or has exclusive access).
func (w *wal) compactLocked() error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	size := int64(0)
	write := func(b []byte) bool {
		if err != nil {
			return false
		}
		var n int
		n, err = f.Write(b)
		size += int64(n)
		return err == nil
	}
	write(walMagic[:])
	// Rulesets before sessions: replay must compile before it resumes.
	for _, prefix := range []string{"n/", "r/", "s/"} {
		for key, payload := range w.live {
			if len(key) < 2 || key[:2] != prefix {
				continue
			}
			var frame [8]byte
			binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
			if !write(frame[:]) || !write(payload) {
				break
			}
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, w.path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if w.f != nil {
		// The compacted log was already synced and renamed over w.path;
		// this handle refers to the replaced inode, so its close result
		// cannot affect durability.
		//cavet:ignore errdrop superseded handle, rename above is the durability point
		w.f.Close()
	}
	w.f, err = os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.failed = true
		return fmt.Errorf("wal: compact: reopen: %w", err)
	}
	w.size = size
	return nil
}

// Close releases the log file. Appends after Close error out.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failed = true
	if w.f != nil {
		err := w.f.Close()
		w.f = nil
		return err
	}
	return nil
}
