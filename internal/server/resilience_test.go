package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cacheautomaton/internal/faults"
	"cacheautomaton/internal/telemetry"
)

// collectorOf digs the server's collector out for metric assertions.
func collectorOf(s *Server) *telemetry.ServerCollector { return s.col }

// TestMatchRequestTimeout checks Config.RequestTimeout stops a long
// match at chunk granularity with 504 and counts it.
func TestMatchRequestTimeout(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, _ := testServer(t, Config{Registry: reg, RequestTimeout: time.Nanosecond})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	// Input long enough to span many cancellation chunks.
	input := strings.Repeat("x", 1<<20)
	start := time.Now()
	_, err := s.Match(context.Background(), MatchRequest{Ruleset: "ids", Input: input})
	if err == nil || statusOf(err) != http.StatusGatewayTimeout {
		t.Fatalf("err = %v (status %d), want 504", err, statusOf(err))
	}
	// A 1ns deadline must stop within ~one chunk, not scan the megabyte.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timed-out match took %v", el)
	}
	if got := collectorOf(s).Timeouts.Value(); got != 1 {
		t.Fatalf("ca_server_timeouts_total = %d, want 1", got)
	}
	// Leases must have been returned despite the cancellation.
	assertLeasesBalanced(t, s)
}

// TestMatchClientDisconnectCancels checks a canceled request context —
// the client hung up — stops a long match mid-input.
func TestMatchClientDisconnectCancels(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Match(ctx, MatchRequest{Ruleset: "ids", Input: strings.Repeat("x", 1<<20)})
	if err == nil {
		t.Fatal("canceled match succeeded")
	}
	assertLeasesBalanced(t, s)
}

// assertLeasesBalanced checks Gets == Puts on every loaded ruleset's
// machine pools — no operation may strand a leased machine.
func assertLeasesBalanced(t *testing.T, s *Server) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, rs := range s.rulesets {
		st := rs.a.LeaseStats()
		open := int64(0)
		// Open sessions legitimately hold one lease each.
		for _, sess := range s.sessions {
			if sess.ruleset == name {
				open++
			}
		}
		if st.Gets != st.Puts+open {
			t.Fatalf("ruleset %s: lease Gets %d != Puts %d + open sessions %d", name, st.Gets, st.Puts, open)
		}
	}
}

// TestFeedCancellationContract checks both halves of the feed contract:
// nothing consumed → 504 retryable; partially consumed → 200 with
// Truncated and an advanced Pos, session still usable.
func TestFeedCancellationContract(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	info, err := s.OpenSession(context.Background(), OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-canceled ctx: nothing consumed, 504, retry succeeds.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.Feed(ctx, info.Session, FeedRequest{Chunk: strings.Repeat("x", 1<<20)})
	if err == nil || statusOf(err) != http.StatusGatewayTimeout {
		t.Fatalf("pre-canceled feed: err = %v (status %d), want 504", err, statusOf(err))
	}
	if got := collectorOf(s).Timeouts.Value(); got != 1 {
		t.Fatalf("ca_server_timeouts_total = %d, want 1", got)
	}
	sessions := s.Sessions()
	if len(sessions) != 1 || sessions[0].Pos != 0 {
		t.Fatalf("after retryable cancel: sessions = %+v, want pos 0", sessions)
	}
	fr, err := s.Feed(context.Background(), info.Session, FeedRequest{Chunk: "xx needle"})
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if len(fr.Matches) != 1 || fr.Truncated {
		t.Fatalf("retry response = %+v, want one match, not truncated", fr)
	}
}

// countCtx is a context whose Err fires deterministically after a fixed
// number of polls — it makes mid-chunk cancellation reproducible
// regardless of machine speed. Done is non-nil so the chunked scan path
// engages; the channel never closes (only Err polls matter here).
type countCtx struct {
	context.Context
	polls   int64
	after   int64
	never   chan struct{}
	pollsMu sync.Mutex
}

func newCountCtx(after int64) *countCtx {
	return &countCtx{Context: context.Background(), after: after, never: make(chan struct{})}
}

func (c *countCtx) Done() <-chan struct{} { return c.never }

func (c *countCtx) Err() error {
	c.pollsMu.Lock()
	defer c.pollsMu.Unlock()
	c.polls++
	if c.polls > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

// TestFeedPartialConsumptionTruncates cancels deterministically after
// two sub-batches: the response must deliver the matches found so far
// with Truncated set and Pos at the cut, and re-sending the unconsumed
// suffix must find the rest with no loss or duplication.
func TestFeedPartialConsumptionTruncates(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry(), MaxBodyBytes: 64 << 20})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	info, err := s.OpenSession(context.Background(), OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	// A match early (inside the first sub-batch) and one at the very end,
	// far past the cancellation point.
	chunk := "needle " + strings.Repeat("x", 1<<20) + " needle"
	fr, err := s.Feed(newCountCtx(2), info.Session, FeedRequest{Chunk: chunk})
	if err != nil {
		t.Fatalf("partially-consumed feed must succeed, got %v", err)
	}
	if !fr.Truncated {
		t.Fatal("response not marked Truncated")
	}
	if want := int64(2 * (64 << 10)); fr.Pos != want {
		t.Fatalf("truncated pos = %d, want exactly two sub-batches (%d)", fr.Pos, want)
	}
	if len(fr.Matches) != 1 {
		t.Fatalf("truncated feed delivered %d matches, want the early 1", len(fr.Matches))
	}
	// Resume: re-send the unconsumed suffix.
	fr2, err := s.Feed(context.Background(), info.Session, FeedRequest{Chunk: chunk[fr.Pos:]})
	if err != nil {
		t.Fatalf("resume feed: %v", err)
	}
	if len(fr2.Matches) != 1 {
		t.Fatalf("resumed feed found %d matches, want the trailing 1 (no loss, no duplication)", len(fr2.Matches))
	}
	if got := int64(len(fr.Matches) + len(fr2.Matches)); got != 2 {
		t.Fatalf("total matches = %d, want 2", got)
	}
}

// TestPanicIsolationHTTP injects a panic at the match seam and checks
// the HTTP transport turns it into a structured 500, counts it, and
// keeps serving.
func TestPanicIsolationHTTP(t *testing.T) {
	s, ts := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.NewInjector(3, map[string]faults.Rule{
		"server.match": {Rate: 1, Kinds: faults.KindPanic},
	}))
	var body map[string]any
	code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "xx needle"}, &body)
	faults.Disable()
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking match returned %d, want 500", code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "injected panic") {
		t.Fatalf("error body = %v, want injected panic message", body)
	}
	if got := collectorOf(s).Panics.Value(); got != 1 {
		t.Fatalf("ca_server_panics_total = %d, want 1", got)
	}
	// The server must keep serving, state intact.
	var mr MatchResponse
	if code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "xx needle"}, &mr); code != http.StatusOK {
		t.Fatalf("match after panic returned %d", code)
	}
	if len(mr.Matches) != 1 {
		t.Fatalf("match after panic found %d matches, want 1", len(mr.Matches))
	}
	assertLeasesBalanced(t, s)
}

// TestPanicIsolationTCP does the same over the line-framed transport.
func TestPanicIsolationTCP(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	tsrv := &TCPServer{s: s}
	faults.Enable(faults.NewInjector(3, map[string]faults.Rule{
		"server.match": {Rate: 1, Kinds: faults.KindPanic},
	}))
	resp := tsrv.dispatch(context.Background(), []byte(`{"op":"match","ruleset":"ids","input":"xx needle"}`))
	faults.Disable()
	te, ok := resp.(tcpErr)
	if !ok || te.Status != http.StatusInternalServerError || !strings.Contains(te.Error, "injected panic") {
		t.Fatalf("dispatch under panic = %+v, want structured 500", resp)
	}
	if got := collectorOf(s).Panics.Value(); got != 1 {
		t.Fatalf("ca_server_panics_total = %d, want 1", got)
	}
	resp = tsrv.dispatch(context.Background(), []byte(`{"op":"match","ruleset":"ids","input":"xx needle"}`))
	if okResp, ok := resp.(tcpOK); !ok || !okResp.OK {
		t.Fatalf("dispatch after panic = %+v, want success", resp)
	}
}

// TestInjectedLeaseExhaustion checks an injected pool-Get refusal
// surfaces as a structured error and leaves Gets == Puts.
func TestInjectedLeaseExhaustion(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.NewInjector(5, map[string]faults.Rule{
		"machine.pool.get": {Rate: 1},
	}))
	_, err := s.Match(context.Background(), MatchRequest{Ruleset: "ids", Input: "xx needle"})
	faults.Disable()
	if err == nil || statusOf(err) != http.StatusInternalServerError {
		t.Fatalf("lease-refused match: err = %v, want 500", err)
	}
	assertLeasesBalanced(t, s)
	// And recovery is immediate once the fault clears.
	if _, err := s.Match(context.Background(), MatchRequest{Ruleset: "ids", Input: "xx needle"}); err != nil {
		t.Fatalf("match after lease fault: %v", err)
	}
}

// TestReadyzDrainWindow checks the readiness window: ready before
// drain, 503 from SetReady(false) while /healthz (liveness) and
// in-flight serving still work, and not-ready through Shutdown.
func TestReadyzDrainWindow(t *testing.T) {
	s, ts := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before drain = %d, want 200", code)
	}

	// The drain window: readiness flips first, listeners still up,
	// requests still served.
	s.SetReady(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz in drain window = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz in drain window = %d, want 200 (still live)", code)
	}
	var mr MatchResponse
	if code := doJSON(t, "POST", ts.URL+"/match", MatchRequest{Ruleset: "ids", Input: "xx needle"}, &mr); code != http.StatusOK {
		t.Fatalf("match in drain window returned %d, want 200 (in-flight work must complete)", code)
	}

	// SetReady(true) restores readiness (aborted drain).
	s.SetReady(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after SetReady(true) = %d, want 200", code)
	}

	// Shutdown flips it for good, even after SetReady(true).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s.SetReady(true) // draining wins over the flag
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Shutdown = %d, want 503", code)
	}
}

// TestInjectedFeedFaultKeepsSessionConsistent hammers one session with
// injected feed faults from many goroutines and checks the surviving
// feeds' positions advance monotonically with no lost state.
func TestInjectedFeedFaultKeepsSessionConsistent(t *testing.T) {
	s, _ := testServer(t, Config{Registry: telemetry.NewRegistry()})
	if _, err := s.Compile(context.Background(), "ids", CompileRequest{Patterns: []string{"needle"}}); err != nil {
		t.Fatal(err)
	}
	info, err := s.OpenSession(context.Background(), OpenSessionRequest{Ruleset: "ids"})
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.NewInjector(11, map[string]faults.Rule{
		"server.feed": {Rate: 0.3},
	}))
	defer faults.Disable()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fed := int64(0)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fr, err := s.Feed(context.Background(), info.Session, FeedRequest{Chunk: "0123456789"})
				if err != nil {
					if !faults.IsInjected(err) {
						t.Errorf("organic feed error: %v", err)
						return
					}
					continue // injected fault fired before consumption: retryable
				}
				mu.Lock()
				fed += 10
				mu.Unlock()
				_ = fr
			}
		}()
	}
	wg.Wait()
	faults.Disable()
	sessions := s.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %+v", sessions)
	}
	if sessions[0].Pos != fed {
		t.Fatalf("session pos %d != bytes acknowledged %d (lost or duplicated consumption)", sessions[0].Pos, fed)
	}
}
