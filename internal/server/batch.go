package server

import (
	"context"
	"hash/maphash"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cacheautomaton/internal/faults"
	"cacheautomaton/internal/telemetry"
)

// batcher coalesces concurrent small /match requests against one rule
// set into shared batched machine sweeps. Members accumulate into the
// current generation until the window elapses or a size/byte cap trips;
// the flush then runs every member's input through ONE leased machine
// (ca.Lease.RunBatch) and fans the per-request results back out.
//
// Lock order: batcher.mu is a leaf (rank 85 in the lockorder table) —
// nothing blocking, tracing, or metric-flavored happens under it; all
// flush work runs after release.
type batcher struct {
	s  *Server
	rs *ruleset

	mu     sync.Mutex
	cur    *batchGen
	nextID uint64
}

// batchGen is one accumulating generation of members. Exactly one of
// three paths flushes it: the window timer, the member whose arrival
// trips a cap, or nobody yet (it is still b.cur). Members are stored by
// value in one preallocated array and results are delivered by closing
// ready once every member's outcome is in place, so steady-state
// batching allocates per generation, not per member.
type batchGen struct {
	id      uint64
	members []batchMember
	bytes   int64
	// timer and detached are an arm/stop handshake kept outside
	// batcher.mu so the leaf-lock discipline holds: the creator arms the
	// window timer after releasing the lock, and a member that trips a
	// cap marks the generation detached and stops whatever timer is
	// published by then. Whichever side runs second sees the other's
	// write, so a detached generation's timer is always stopped (a
	// too-late Stop is harmless — flushTimer no-ops on detached gens).
	timer    atomic.Pointer[time.Timer]
	detached atomic.Bool
	// ready is closed by the flusher after every member's outcome is
	// final AND the machine lease is back in the pool; members read
	// their slot only after the close, so the array is never appended
	// to and read concurrently.
	ready chan struct{}
}

// batchMember is one enqueued request. The member goroutine owns rt and
// sp; out is written by the flusher before ready is closed and read by
// the member after, with the close as the ordering edge. input is the
// request's payload kept as a string: the sweep only reads it, so the
// text-body serving path hands it down with no per-request copy.
type batchMember struct {
	input string
	rt    *telemetry.ReqTrace
	sp    *telemetry.Span
	enq   time.Time
	out   batchOutcome
}

type batchOutcome struct {
	// resp is the member's ready-made response. Members of one batch that
	// carried byte-identical inputs share ONE response value: the match
	// array and stats are converted to wire form once per unique input
	// and handed out read-only, so a 64-duplicate hot-key batch pays for
	// one conversion, not 64. Responses are immutable by convention on
	// every serving path (transports marshal them; in-process callers
	// must not mutate them).
	resp *MatchResponse
	err  error
	// settled marks an outcome delivered early (a per-member seam fault)
	// so the flush-panic recovery can tell failed members from ones it
	// still owes an answer.
	settled bool
}

// batchFlush is one detached generation queued for the server's
// persistent flusher goroutine.
type batchFlush struct {
	b *batcher
	g *batchGen
}

// dispatchFlush hands a detached generation to the persistent flusher,
// or flushes it on the calling goroutine when the queue is full (natural
// backpressure: a busy flusher regains parallelism from its callers).
func (s *Server) dispatchFlush(b *batcher, g *batchGen) {
	select {
	case s.flushq <- batchFlush{b, g}:
	default:
		b.flush(g)
	}
}

// runFlusher drains flushq until the server stops it after a successful
// drain. Running every flush on one long-lived goroutine keeps the
// machine call chain on an already-grown stack — a fresh goroutine per
// flush would pay several stack copies growing through the sweep.
func (s *Server) runFlusher() {
	defer close(s.flusherDone)
	for {
		select {
		case f := <-s.flushq:
			f.b.flush(f.g)
		case <-s.stopFlusher:
			return
		}
	}
}

// batchEligible decides whether a match request may coalesce. Sharded
// and oversize requests bypass; so do deadline-critical ones — a
// request whose remaining budget is within a few windows of expiry
// cannot afford to sit out the coalescing wait.
func (s *Server) batchEligible(ctx context.Context, req MatchRequest, n int64) bool {
	if req.Shards > 1 || n > s.cfg.BatchBytes {
		return false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < 4*s.cfg.BatchWindow {
		return false
	}
	return true
}

// matchBatched enqueues the request on the rule set's batcher and waits
// for its outcome. The wait is recorded as a "batch" stage span carrying
// the batch id, final size, and this member's coalescing wait.
func (s *Server) matchBatched(ctx context.Context, rt *telemetry.ReqTrace, b *batcher, input string) (*MatchResponse, error) {
	sp := rt.StartStage("batch")
	g, idx := b.enqueue(input, rt, sp)
	select {
	case <-g.ready:
		sp.End()
		out := &g.members[idx].out
		if out.err != nil {
			return nil, out.err
		}
		s.col.MatchInputBytes.Add(int64(len(input)))
		s.col.MatchReports.Add(int64(len(out.resp.Matches)))
		return out.resp, nil
	case <-ctx.Done():
		// The flusher still settles this member's slot; only this waiter
		// gives up. Its place in the sweep is wasted, not corrupted.
		sp.End()
		s.col.Timeouts.Inc()
		return nil, errc(http.StatusGatewayTimeout, ctx.Err(), "canceled while batched: %v", ctx.Err())
	}
}

// enqueue adds a member to the current generation, opening a new one
// (with its window timer) when none is accumulating, and returns the
// generation plus the member's slot index. The member whose arrival
// trips the size or byte cap detaches the generation and hands it to
// the flusher.
func (b *batcher) enqueue(input string, rt *telemetry.ReqTrace, sp *telemetry.Span) (*batchGen, int) {
	b.mu.Lock()
	g := b.cur
	created := false
	if g == nil {
		b.nextID++
		g = &batchGen{
			id:      b.nextID,
			members: make([]batchMember, 0, b.s.cfg.BatchMax),
			ready:   make(chan struct{}),
		}
		b.cur = g
		// The enqueuing member's operation is already registered with
		// s.ops (Match ran begin()), so the counter is positive and this
		// Add cannot race a drain's Wait.
		b.s.ops.Add(1)
		created = true
	}
	idx := len(g.members)
	g.members = append(g.members, batchMember{input: input, rt: rt, sp: sp, enq: time.Now()})
	g.bytes += int64(len(input))
	full := len(g.members) >= b.s.cfg.BatchMax || g.bytes >= b.s.cfg.BatchBytes
	if full {
		b.cur = nil
	}
	b.mu.Unlock()
	if created && !full {
		// Armed only after the generation is installed — a timer firing
		// before installation would see b.cur != g, no-op, and never come
		// back, leaving a window-only generation waiting forever.
		tm := time.AfterFunc(b.s.cfg.BatchWindow, func() { b.flushTimer(g) })
		g.timer.Store(tm)
		if g.detached.Load() {
			tm.Stop()
		}
	}
	if full {
		g.detached.Store(true)
		if tm := g.timer.Load(); tm != nil {
			tm.Stop()
		}
		b.s.dispatchFlush(b, g)
	}
	return g, idx
}

// flushTimer is the window-expiry path. If a cap already detached the
// generation the timer loses the race and does nothing.
func (b *batcher) flushTimer(g *batchGen) {
	b.mu.Lock()
	own := b.cur == g
	if own {
		b.cur = nil
	}
	b.mu.Unlock()
	if own {
		b.s.dispatchFlush(b, g)
	}
}

// flush runs one generation: per-member fault seam, one worker slot,
// one leased machine, one batched sweep, then one broadcast delivery.
// Failures degrade per member where possible — a seam fault or a
// recovered stream panic fails only that member — and batch-wide
// otherwise (no slot, no lease, canceled run). ready is closed in a
// defer, after the machine is back in the pool and after panic
// recovery has settled every outstanding member, so lease accounting is
// settled before any member proceeds and nobody waits forever.
func (b *batcher) flush(g *batchGen) {
	s := b.s
	defer s.ops.Done()
	defer func() {
		// A flush panic (outside the per-member guards) must not strand
		// the waiters: fail every member that has no outcome yet.
		if r := recover(); r != nil {
			s.col.Panics.Inc()
			err := errf(http.StatusInternalServerError, "batch flush panic: %v", r)
			for i := range g.members {
				if !g.members[i].out.settled {
					g.members[i].out = batchOutcome{err: err, settled: true}
				}
			}
		}
		close(g.ready)
	}()

	now := time.Now()
	size := int64(len(g.members))
	s.col.BatchSize.ObserveInt(size)
	s.col.BatchedRequests.Add(size)
	for i := range g.members {
		mb := &g.members[i]
		s.col.BatchWait.Observe(now.Sub(mb.enq).Seconds())
		mb.sp.SetAttr("batch_id", int64(g.id))
		mb.sp.SetAttr("batch_size", size)
		mb.sp.SetAttr("wait_us", now.Sub(mb.enq).Microseconds())
	}

	// Flush-time injection point: fires once per member, so a fault here
	// fails exactly one member while the rest of the batch proceeds.
	alive := make([]int, 0, len(g.members))
	for i := range g.members {
		if err := s.checkBatchMember(&g.members[i]); err != nil {
			g.members[i].out = batchOutcome{err: err, settled: true}
			continue
		}
		alive = append(alive, i)
	}
	if len(alive) == 0 {
		return
	}
	failAll := func(err error) {
		for _, i := range alive {
			g.members[i].out = batchOutcome{err: err, settled: true}
		}
	}

	// One worker slot and one leased machine serve the whole batch. The
	// members' transport contexts stay out of the run deliberately: one
	// disconnecting client must not cancel its batch-mates' sweep.
	release, err := s.acquireSlot(context.Background())
	if err != nil {
		failAll(err)
		return
	}
	defer release()
	runCtx, cancel := s.opCtx(context.Background())
	defer cancel()
	l, err := b.rs.a.LeaseContext(runCtx)
	if err != nil {
		if faults.IsInjected(err) {
			// runCtx carries no request trace (it is deliberately detached
			// from the members' transport contexts), so an injected lease
			// refusal would otherwise vanish from flight-recorder fault
			// accounting. It is one fault firing that fails the whole batch:
			// annotate exactly one member's trace with the pool seam's name.
			g.members[alive[0]].rt.Annotate("fault", "machine.pool.get")
		}
		failAll(errc(http.StatusInternalServerError, err, "lease: %v", err))
		return
	}
	// Hot-key dedup: members of one batch carrying byte-identical inputs
	// share a single lane of the sweep and then share its result — the
	// scan is deterministic, so one run of the bytes IS every duplicate's
	// bit-identical answer. Outcomes alias the shared match slice and
	// stats; members only read them, so the sharing is invisible.
	inputs := make([]string, 0, len(alive))
	share := make([]int, len(alive))
	seed := maphash.MakeSeed()
	seen := make(map[uint64]int, len(alive))
	for k, i := range alive {
		in := g.members[i].input
		h := maphash.String(seed, in)
		u, dup := seen[h]
		if !dup || inputs[u] != in {
			u = len(inputs)
			inputs = append(inputs, in)
			seen[h] = u
		}
		share[k] = u
	}
	items, rerr := l.RunBatch(runCtx, inputs)
	l.Release()
	if rerr != nil {
		if runCtx.Err() != nil {
			s.col.Timeouts.Inc()
			failAll(errc(http.StatusGatewayTimeout, runCtx.Err(), "batched run canceled: %v", rerr))
		} else {
			failAll(errc(http.StatusInternalServerError, rerr, "batched run: %v", rerr))
		}
		return
	}
	resps := make([]*MatchResponse, len(items))
	for k, i := range alive {
		it := &items[share[k]]
		if it.Err != nil {
			g.members[i].out = batchOutcome{err: errc(http.StatusInternalServerError, it.Err, "batched run: %v", it.Err), settled: true}
			continue
		}
		if resps[share[k]] == nil {
			resps[share[k]] = &MatchResponse{Matches: wireMatches(it.Matches), Stats: wireStats(it.Stats)}
		}
		g.members[i].out = batchOutcome{resp: resps[share[k]], settled: true}
	}
}

// checkBatchMember fires the server.batch.flush seam for one member,
// converting an injected error or panic into that member's failure. The
// member's trace is annotated before ready is closed, so fault
// accounting never races the member's finishTrace.
func (s *Server) checkBatchMember(mb *batchMember) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.col.Panics.Inc()
			if p, ok := r.(*faults.Panic); ok {
				mb.rt.Annotate("fault", p.Point)
			}
			err = errf(http.StatusInternalServerError, "batch member panic: %v", r)
		}
	}()
	if err := faults.Check("server.batch.flush"); err != nil {
		if faults.IsInjected(err) {
			mb.rt.Annotate("fault", "server.batch.flush")
		}
		return errc(http.StatusInternalServerError, err, "batch flush: %v", err)
	}
	return nil
}
