package sched

import (
	"bytes"
	"fmt"
	"testing"

	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/machine"
	"cacheautomaton/internal/mapper"
	"cacheautomaton/internal/regexc"
)

func placementFor(t testing.TB, pats []string) *mapper.Placement {
	t.Helper()
	n, err := regexc.CompileSet(pats, regexc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mapper.Map(n, mapper.Config{Design: arch.NewDesign(arch.PerfOpt), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func inputWithNeedles(n int, needle string, times int) []byte {
	in := bytes.Repeat([]byte("."), n)
	for i := 0; i < times; i++ {
		copy(in[(i+1)*n/(times+1):], needle)
	}
	return in
}

func TestSchedulerRunsAllJobs(t *testing.T) {
	s, err := New(Config{Slices: 2, NFAWaysPerSlice: 4, TDPWatts: 100, QuantumBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pl := placementFor(t, []string{fmt.Sprintf("needle%d", i)})
		job := &Job{
			ID:        fmt.Sprintf("job%d", i),
			Placement: pl,
			Input:     inputWithNeedles(4096, fmt.Sprintf("needle%d", i), 5),
			Priority:  i,
		}
		if err := s.Submit(job); err != nil {
			t.Fatal(err)
		}
	}
	results := s.Run()
	if len(results) != 3 {
		t.Fatalf("completed = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.Matches != 5 {
			t.Errorf("%s: matches = %d, want 5", r.ID, r.Matches)
		}
	}
}

func TestSchedulerPreemptionPreservesMatches(t *testing.T) {
	// Tight TDP: only one job runs at a time, forcing suspend/resume.
	// A match is planted EXACTLY across a quantum boundary; the
	// architectural snapshot must carry it over.
	pl := placementFor(t, []string{"boundary"})
	onePower := pl.PeakPowerHintW()
	s, err := New(Config{Slices: 1, NFAWaysPerSlice: 8, TDPWatts: onePower * 1.5, QuantumBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, prio int) *Job {
		in := bytes.Repeat([]byte("x"), 1024)
		copy(in[252:], "boundary") // spans the 256-byte quantum edge
		copy(in[700:], "boundary")
		return &Job{ID: id, Placement: placementFor(t, []string{"boundary"}), Input: in, Priority: prio}
	}
	jA, jB := mk("A", 1), mk("B", 1)
	if err := s.Submit(jA); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(jB); err != nil {
		t.Fatal(err)
	}
	results := s.Run()
	if len(results) != 2 {
		t.Fatalf("completed = %d", len(results))
	}
	for _, r := range results {
		if r.Matches != 2 {
			t.Errorf("%s: matches = %d, want 2 (one spanning the quantum boundary)", r.ID, r.Matches)
		}
	}
	// With both jobs over half the budget, they cannot co-run: at least
	// one job must have been suspended at least once.
	if jA.suspends+jB.suspends == 0 {
		t.Error("tight TDP should force preemption")
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	pl1 := placementFor(t, []string{"aaa"})
	s, _ := New(Config{Slices: 1, NFAWaysPerSlice: 8, TDPWatts: pl1.PeakPowerHintW() * 1.2, QuantumBytes: 128})
	low := &Job{ID: "low", Placement: placementFor(t, []string{"aaa"}), Input: make([]byte, 1024), Priority: 0}
	high := &Job{ID: "high", Placement: placementFor(t, []string{"bbb"}), Input: make([]byte, 1024), Priority: 9}
	if err := s.Submit(low); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(high); err != nil {
		t.Fatal(err)
	}
	results := s.Run()
	if results[0].ID != "high" {
		t.Errorf("high-priority job should finish first: %+v", results)
	}
	if results[0].CompletedAtSymbols >= results[1].CompletedAtSymbols {
		t.Errorf("completion timeline out of order: %+v", results)
	}
}

func TestSubmitRejections(t *testing.T) {
	s, _ := New(Config{Slices: 1, NFAWaysPerSlice: 1, TDPWatts: 0.001})
	pl := placementFor(t, []string{"abc"})
	if err := s.Submit(&Job{ID: "hot", Placement: pl, Input: []byte("x")}); err == nil {
		t.Error("job hotter than TDP should be rejected")
	}
	if err := s.Submit(&Job{ID: "empty", Placement: pl}); err == nil {
		t.Error("job without input should be rejected")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestSchedulerMatchesEqualUnscheduledRun(t *testing.T) {
	// The scheduled (preempted) execution must find exactly what a single
	// uninterrupted run finds.
	pats := []string{"alpha[0-9]", "bet+a"}
	pl := placementFor(t, pats)
	in := bytes.Repeat([]byte("alpha7 betta "), 200)
	m, err := machine.New(pl, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Run(in).MatchCount

	s, _ := New(Config{Slices: 1, NFAWaysPerSlice: 8, TDPWatts: pl.PeakPowerHintW() * 1.4, QuantumBytes: 100})
	j1 := &Job{ID: "j1", Placement: pl, Input: in, Priority: 1}
	j2 := &Job{ID: "j2", Placement: placementFor(t, pats), Input: in, Priority: 1}
	if err := s.Submit(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(j2); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Run() {
		if r.Matches != want {
			t.Errorf("%s: matches = %d, want %d", r.ID, r.Matches, want)
		}
	}
}
