// Package sched models the system-integration story of paper §2.9: NFA
// jobs share the last-level cache with each other under a power budget.
// "Since NFA computation has high peak power requirements for some
// benchmarks, the OS scheduler together with the power governor must
// ensure that the system TDP is not exceeded ... the compiler can provide
// coarse-grained peak-power estimates (hints) to guide OS scheduling. In
// case the OS wishes to schedule a higher-priority process, the NFA
// process may also be suspended and later resumed by recording the number
// of input symbols processed and the active state vector to memory."
//
// The scheduler admits the highest-priority jobs whose summed peak-power
// hints fit the TDP budget and whose mappings fit the available ways;
// preempted jobs are suspended through the machine's architectural
// snapshot and resumed later, so matches spanning preemption points are
// preserved.
package sched

import (
	"fmt"
	"sort"

	"cacheautomaton/internal/machine"
	"cacheautomaton/internal/mapper"
)

// Job is one NFA workload: a compiled placement plus its input stream.
type Job struct {
	// ID names the job in results.
	ID string
	// Placement is the compiled automaton.
	Placement *mapper.Placement
	// Input is the stream to process.
	Input []byte
	// Priority: higher values are scheduled first.
	Priority int

	m        *machine.Machine
	consumed int
	matches  int64
	// sinceRestore tracks the machine's internal match counter, which
	// resets on Restore (statistics are not architectural state).
	sinceRestore int64
	suspends     int
	lastRan      int64
}

// Config describes the machine the jobs share.
type Config struct {
	// Slices is the number of LLC slices (8-16 on the modeled Xeons).
	Slices int
	// NFAWaysPerSlice is how many ways per slice may hold NFA state
	// (§2.9: 4-8, the rest stays regular cache).
	NFAWaysPerSlice int
	// TDPWatts is the power budget for NFA work (§5.3 discusses the 160 W
	// processor TDP).
	TDPWatts float64
	// QuantumBytes is the preemption granularity (default 4096).
	QuantumBytes int
}

func (c Config) quantum() int {
	if c.QuantumBytes <= 0 {
		return 4096
	}
	return c.QuantumBytes
}

func (c Config) totalWays() int { return c.Slices * c.NFAWaysPerSlice }

// Result summarizes one completed job.
type Result struct {
	ID string
	// Matches found over the whole stream (preemption-transparent).
	Matches int64
	// Suspensions counts preemptions.
	Suspensions int
	// CompletedAtSymbols is the scheduler timeline position (total symbols
	// across the run's quanta) when the job finished.
	CompletedAtSymbols int64
}

// Scheduler runs submitted jobs to completion.
type Scheduler struct {
	cfg  Config
	jobs []*Job
}

// New returns a scheduler for the machine config.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Slices <= 0 || cfg.NFAWaysPerSlice <= 0 || cfg.TDPWatts <= 0 {
		return nil, fmt.Errorf("sched: invalid config %+v", cfg)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Submit queues a job, rejecting jobs that could never run: mappings
// bigger than the machine or hotter than the whole budget.
func (s *Scheduler) Submit(j *Job) error {
	if j.Placement == nil || len(j.Input) == 0 {
		return fmt.Errorf("sched: job %q needs a placement and input", j.ID)
	}
	if ways := j.Placement.WaysUsed(); ways > s.cfg.totalWays() {
		return fmt.Errorf("sched: job %q needs %d ways, machine has %d", j.ID, ways, s.cfg.totalWays())
	}
	if p := j.Placement.PeakPowerHintW(); p > s.cfg.TDPWatts {
		return fmt.Errorf("sched: job %q peak power hint %.1fW exceeds TDP %.1fW", j.ID, p, s.cfg.TDPWatts)
	}
	m, err := machine.New(j.Placement, machine.Options{})
	if err != nil {
		return err
	}
	j.m = m
	s.jobs = append(s.jobs, j)
	return nil
}

// Run executes all submitted jobs to completion and returns their results
// in completion order.
func (s *Scheduler) Run() []Result {
	var timeline int64
	var done []Result
	pending := append([]*Job(nil), s.jobs...)
	// Suspended state blobs for jobs not currently admitted.
	suspended := map[*Job]*machine.Snapshot{}
	running := map[*Job]bool{}

	for len(pending) > 0 {
		// Admission: by priority (then submission order), pack jobs while
		// power and way budgets hold — the greedy policy an OS governor
		// hint interface supports.
		// Equal-priority jobs rotate round-robin (least recently run
		// first) so the budget is time-sliced rather than starving later
		// submissions.
		order := append([]*Job(nil), pending...)
		sort.SliceStable(order, func(a, b int) bool {
			if order[a].Priority != order[b].Priority {
				return order[a].Priority > order[b].Priority
			}
			return order[a].lastRan < order[b].lastRan
		})
		var admitted []*Job
		power, ways := 0.0, 0
		for _, j := range order {
			jp := j.Placement.PeakPowerHintW()
			jw := j.Placement.WaysUsed()
			if power+jp <= s.cfg.TDPWatts && ways+jw <= s.cfg.totalWays() {
				admitted = append(admitted, j)
				power += jp
				ways += jw
			}
		}
		if len(admitted) == 0 {
			admitted = order[:1] // always make progress
		}
		// Suspend newly-preempted, resume newly-admitted.
		admittedSet := map[*Job]bool{}
		for _, j := range admitted {
			admittedSet[j] = true
		}
		for j := range running {
			if !admittedSet[j] {
				suspended[j] = j.m.Snapshot()
				j.suspends++
				delete(running, j)
			}
		}
		for _, j := range admitted {
			if !running[j] {
				if snap, ok := suspended[j]; ok {
					_ = j.m.Restore(snap)
					delete(suspended, j)
					j.sinceRestore = 0
				}
				running[j] = true
			}
		}
		// Run one quantum for each admitted job.
		var still []*Job
		maxChunk := 0
		for _, j := range pending {
			if !admittedSet[j] {
				still = append(still, j)
				continue
			}
			chunk := s.cfg.quantum()
			if rem := len(j.Input) - j.consumed; chunk > rem {
				chunk = rem
			}
			res := j.m.Run(j.Input[j.consumed : j.consumed+chunk])
			j.consumed += chunk
			j.lastRan = timeline + 1
			j.matches += res.MatchCount - j.sinceRestore
			j.sinceRestore = res.MatchCount
			if chunk > maxChunk {
				maxChunk = chunk
			}
			if j.consumed >= len(j.Input) {
				done = append(done, Result{
					ID:                 j.ID,
					Matches:            j.matches,
					Suspensions:        j.suspends,
					CompletedAtSymbols: timeline + int64(chunk),
				})
				delete(running, j)
			} else {
				still = append(still, j)
			}
		}
		timeline += int64(maxChunk)
		pending = still
	}
	return done
}
