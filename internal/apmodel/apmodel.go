// Package apmodel holds the analytical comparison models the paper
// evaluates against: Micron's DRAM-based Automata Processor (AP, §1/§5),
// the "Ideal AP" energy model (§5.3), the x86-CPU prior-result ratio
// (§5.1), and the HARE and UAP ASIC designs of Table 5 (§5.6). All numbers
// are the ones published in the paper and its citations; the models turn
// them into the throughput/runtime/energy/area comparisons of Figures 7,
// 9, 10 and Table 5.
package apmodel

// AP parameters (§1, §5.1, §5.4, Fig. 10).
const (
	// APFrequencyGHz is the AP's symbol rate: one symbol per cycle at
	// 133 MHz.
	APFrequencyGHz = 0.133
	// APThroughputGbps is the resulting line rate (8 bits/symbol).
	APThroughputGbps = APFrequencyGHz * 8
	// APStatesPerChip: "An AP chip can support up to 48K transitions in
	// each cycle."
	APStatesPerChip = 48 * 1024
	// APStatesPerRank: "A rank of AP (8 dies) can accommodate 384K states."
	APStatesPerRank = 384 * 1024
	// APReachability: "Micron's AP provides an average reachability of
	// 230.5 states from any state (Fan-out)" (§5.4).
	APReachability = 230.5
	// APMaxFanIn: "in contrast to only 16 supported by AP" (§5.4).
	APMaxFanIn = 16
	// APAreaMM2Per32K is the AP transition-matrix area for 32K STEs
	// (Fig. 10: "AP incurs a high area overhead of 38mm²").
	APAreaMM2Per32K = 38.0
	// APConfigTimeMS: "AP's configuration time can be up to tens of
	// milliseconds" (§2.10).
	APConfigTimeMS = 45.0
	// IdealAPDRAMBitPJ is the optimistic DRAM activation energy of the
	// Ideal AP model: "an optimistic 1 pJ/bit for DRAM array access
	// energy" (§5.3).
	IdealAPDRAMBitPJ = 1.0
	// APRowBits is the bits activated per partition row read.
	APRowBits = 256
)

// APOverCPUSpeedup is the prior result the paper chains for its CPU
// comparison: "Prior studies for same set of benchmarks have shown 256×
// speedup over conventional x86 CPU [39]" (§5.1).
const APOverCPUSpeedup = 256.0

// CPUThroughputGbps is the implied conventional-CPU automata throughput.
func CPUThroughputGbps() float64 { return APThroughputGbps / APOverCPUSpeedup }

// IdealAPSymbolEnergyPJ returns the Ideal-AP energy for one symbol with the
// given average number of active partitions (zero interconnect energy).
func IdealAPSymbolEnergyPJ(activePartitions float64) float64 {
	return activePartitions * APRowBits * IdealAPDRAMBitPJ
}

// ASIC is one comparison row of Table 5.
type ASIC struct {
	Name            string
	ThroughputGbps  float64
	PowerW          float64
	EnergyNJPerByte float64
	AreaMM2         float64
}

// HARE returns the HARE (W=32) row of Table 5.
func HARE() ASIC {
	return ASIC{Name: "HARE (W=32)", ThroughputGbps: 3.9, PowerW: 125, EnergyNJPerByte: 256, AreaMM2: 80}
}

// UAP returns the UAP row of Table 5.
func UAP() ASIC {
	return ASIC{Name: "UAP", ThroughputGbps: 5.3, PowerW: 0.507, EnergyNJPerByte: 0.802, AreaMM2: 5.67}
}

// RuntimeMS returns the time to process `bytes` of input at the ASIC's
// line rate.
func (a ASIC) RuntimeMS(bytes int64) float64 {
	return float64(bytes) * 8 / (a.ThroughputGbps * 1e9) * 1e3
}

// APRuntimeMS returns the AP's time to process `bytes` (one byte per
// 133 MHz cycle).
func APRuntimeMS(bytes int64) float64 {
	return float64(bytes) / (APFrequencyGHz * 1e9) * 1e3
}

// APChipsFor returns how many AP chips hold `states` STEs.
func APChipsFor(states int) int {
	if states <= 0 {
		return 0
	}
	return (states + APStatesPerChip - 1) / APStatesPerChip
}
