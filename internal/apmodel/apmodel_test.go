package apmodel

import (
	"math"
	"testing"
)

func TestAPThroughput(t *testing.T) {
	if math.Abs(APThroughputGbps-1.064) > 1e-9 {
		t.Errorf("AP throughput = %f, want 1.064 Gb/s", APThroughputGbps)
	}
}

func TestCPUThroughput(t *testing.T) {
	// 1.064 / 256 ≈ 0.00416 Gb/s; CA_P at 16 Gb/s is then 3850× CPU —
	// the paper's 3840× headline (15 × 256).
	cpu := CPUThroughputGbps()
	if speedup := 16.0 / cpu; math.Abs(speedup-3849.6) > 1 {
		t.Errorf("CA_P/CPU speedup = %.0f, want ≈3840-3850", speedup)
	}
}

func TestTable5Rows(t *testing.T) {
	h, u := HARE(), UAP()
	if h.ThroughputGbps != 3.9 || h.PowerW != 125 || h.AreaMM2 != 80 {
		t.Errorf("HARE row wrong: %+v", h)
	}
	if u.ThroughputGbps != 5.3 || u.EnergyNJPerByte != 0.802 {
		t.Errorf("UAP row wrong: %+v", u)
	}
	// Table 5 runtimes for a 10MB (10^7-byte) stream: HARE 20.48ms,
	// UAP 15.83ms (paper rounds; allow 3%).
	if rt := h.RuntimeMS(10_000_000); math.Abs(rt-20.48) > 0.65 {
		t.Errorf("HARE runtime = %.2fms, want ≈20.5", rt)
	}
	if rt := u.RuntimeMS(10_000_000); math.Abs(rt-15.46) > 0.5 {
		t.Errorf("UAP runtime = %.2fms, want ≈15.1-15.8", rt)
	}
}

func TestAPRuntime(t *testing.T) {
	// 10 MiB at 133 MHz: the paper's AP would take 78.8ms (15× the CA_P
	// 5.24ms).
	rt := APRuntimeMS(10 * 1 << 20)
	if math.Abs(rt-78.8) > 0.3 {
		t.Errorf("AP runtime = %.1fms, want ≈78.8", rt)
	}
}

func TestAPChipsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 48 * 1024: 1, 48*1024 + 1: 2, 384 * 1024: 8}
	for states, want := range cases {
		if got := APChipsFor(states); got != want {
			t.Errorf("APChipsFor(%d) = %d, want %d", states, got, want)
		}
	}
}

func TestIdealAPEnergy(t *testing.T) {
	if got := IdealAPSymbolEnergyPJ(10); got != 2560 {
		t.Errorf("IdealAP energy = %f pJ, want 2560", got)
	}
}
