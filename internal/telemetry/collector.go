package telemetry

// MachineCollector aggregates machine-level run telemetry into a registry.
// It satisfies the machine package's Observer hook interface (and the root
// package's RunObserver) structurally — the method set uses only
// primitives, so this package stays dependency-free.
//
// All instruments are atomic, so one collector may be shared by machines
// running on different goroutines.
type MachineCollector struct {
	// Symbols counts input symbols processed across runs.
	Symbols *Counter
	// RunSeconds accumulates host wall time spent in Machine.Run.
	RunSeconds *FloatGauge
	// SymbolsPerSecond is the host-throughput of the most recent run.
	SymbolsPerSecond *FloatGauge
	// ActiveStates and ActivePartitions are per-cycle activity histograms —
	// the paper's Fig. 9/10 signals.
	ActiveStates     *Histogram
	ActivePartitions *Histogram
	// G1Crossings and G4Crossings count active G-switch source signals.
	G1Crossings *Counter
	G4Crossings *Counter
	// Matches counts report events.
	Matches *Counter
	// OutputBufferInterrupts counts 64-entry output-buffer fills (§2.8).
	OutputBufferInterrupts *Counter
	// OutputBufferHighWater is the peak buffered-report count seen.
	OutputBufferHighWater *Gauge
	// Runs counts completed Machine.Run calls.
	Runs *Counter
}

// NewMachineCollector registers the machine run metrics (names prefixed
// ca_) in reg and returns the collector. reg == nil uses Default().
func NewMachineCollector(reg *Registry) *MachineCollector {
	if reg == nil {
		reg = Default()
	}
	stateBuckets := append([]float64{0}, ExpBuckets(1, 2, 13)...) // 0,1,2,…,4096
	partBuckets := append([]float64{0}, ExpBuckets(1, 2, 9)...)   // 0,1,2,…,256
	return &MachineCollector{
		Symbols:          reg.Counter("ca_run_symbols_total", "Input symbols processed."),
		RunSeconds:       reg.FloatGauge("ca_run_seconds_total", "Host wall time spent simulating."),
		SymbolsPerSecond: reg.FloatGauge("ca_run_symbols_per_second", "Host throughput of the last run."),
		ActiveStates: reg.Histogram("ca_active_states",
			"Per-cycle enabled-state count (includes always-enabled starts).", stateBuckets),
		ActivePartitions: reg.Histogram("ca_active_partitions",
			"Per-cycle partitions with at least one enabled state.", partBuckets),
		G1Crossings: reg.Counter("ca_g1_crossings_total", "Active G-Switch-1 source signals."),
		G4Crossings: reg.Counter("ca_g4_crossings_total", "Active G-Switch-4 source signals (chained hops count twice)."),
		Matches:     reg.Counter("ca_matches_total", "Report events."),
		OutputBufferInterrupts: reg.Counter("ca_output_buffer_interrupts_total",
			"CPU interrupts raised by output-buffer fills."),
		OutputBufferHighWater: reg.Gauge("ca_output_buffer_highwater",
			"Peak entries buffered in the 64-deep output buffer."),
		Runs: reg.Counter("ca_runs_total", "Completed Machine.Run calls."),
	}
}

// ObserveCycle records one simulated cycle's activity.
func (c *MachineCollector) ObserveCycle(activeStates, activePartitions, g1, g4 int64) {
	c.ActiveStates.ObserveInt(activeStates)
	c.ActivePartitions.ObserveInt(activePartitions)
	if g1 != 0 {
		c.G1Crossings.Add(g1)
	}
	if g4 != 0 {
		c.G4Crossings.Add(g4)
	}
}

// ObserveMatches records n report events.
func (c *MachineCollector) ObserveMatches(n int64) { c.Matches.Add(n) }

// ObserveOverflow records one output-buffer interrupt.
func (c *MachineCollector) ObserveOverflow() { c.OutputBufferInterrupts.Inc() }

// ObserveRun records a completed run: symbol count, host wall seconds, and
// the output-buffer high-water mark.
func (c *MachineCollector) ObserveRun(symbols int64, seconds float64, outputPeak int64) {
	c.Runs.Inc()
	c.Symbols.Add(symbols)
	c.RunSeconds.Add(seconds)
	if seconds > 0 {
		c.SymbolsPerSecond.Set(float64(symbols) / seconds)
	}
	c.OutputBufferHighWater.SetMax(outputPeak)
}
