package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running telemetry endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts an HTTP endpoint on addr (":0" picks a free port) exposing:
//
//	/metrics      Prometheus text exposition of reg
//	/metrics.json the same registry as one JSON object
//	/debug/vars   expvar (includes the registry under "cacheautomaton")
//	/debug/pprof/ the standard pprof profile index
//
// reg == nil uses Default(). The server runs on its own goroutine until
// Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	reg.PublishExpvar("cacheautomaton")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	//cavet:owner telemetry.Server http.Server.Close (via Server.Close) unblocks Serve
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
