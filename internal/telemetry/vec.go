package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// HistogramVec is a family of Histograms sharing one name and bucket
// layout, partitioned by a single label (stage, ruleset, …). It renders
// in the Prometheus exposition as name_bucket{label="value",le="…"}
// series under one # TYPE header, so dashboards aggregate and slice the
// family without per-series registration.
//
// Label values are often client-controlled (rule set names), so the vec
// bounds its cardinality: once maxSeries distinct values exist, further
// values collapse into the "other" series instead of growing the
// registry without bound.
type HistogramVec struct {
	label     string
	bounds    []float64
	help      string
	maxSeries int

	mu     sync.RWMutex
	series map[string]*Histogram
}

// DefaultVecSeries bounds a HistogramVec's distinct label values.
const DefaultVecSeries = 64

// overflowSeries absorbs label values beyond the cardinality bound.
const overflowSeries = "other"

// HistogramVec returns the histogram family registered under name,
// creating it with the given label name and bucket bounds if new.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	v := &HistogramVec{
		label:     label,
		bounds:    bs,
		help:      help,
		maxSeries: DefaultVecSeries,
		series:    make(map[string]*Histogram),
	}
	return r.register(name, v).(*HistogramVec)
}

// With returns the histogram for one label value, creating it on first
// use. Values beyond the cardinality bound share the "other" series.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.series[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.series[value]; ok {
		return h
	}
	if len(v.series) >= v.maxSeries && value != overflowSeries {
		if h, ok := v.series[overflowSeries]; ok {
			return h
		}
		value = overflowSeries
	}
	h = &Histogram{bounds: v.bounds, counts: make([]atomic.Int64, len(v.bounds)+1), help: v.help}
	v.series[value] = h
	return h
}

// Labels returns the live label values, sorted.
func (v *HistogramVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.series))
	for k := range v.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (v *HistogramVec) kind() string     { return "histogram" }
func (v *HistogramVec) helpText() string { return v.help }

func (v *HistogramVec) writeProm(w io.Writer, name string) error {
	for _, value := range v.Labels() {
		v.mu.RLock()
		h := v.series[value]
		v.mu.RUnlock()
		lbl := fmt.Sprintf("%s=%q", v.label, value)
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, lbl, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, lbl, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", name, lbl, formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, lbl, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func (v *HistogramVec) jsonValue() any {
	out := make(map[string]any)
	for _, value := range v.Labels() {
		v.mu.RLock()
		h := v.series[value]
		v.mu.RUnlock()
		out[value] = h.jsonValue()
	}
	return out
}
