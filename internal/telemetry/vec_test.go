package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestHistogramVecWith(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("ca_stage_seconds", "by stage", "stage", []float64{0.01, 0.1, 1})
	a := v.With("queue")
	if v.With("queue") != a {
		t.Fatal("With must return the same histogram for one label value")
	}
	a.Observe(0.05)
	a.Observe(0.5)
	if a.Count() != 2 {
		t.Fatalf("count = %d, want 2", a.Count())
	}
	v.With("run").ObserveInt(2)
	got := v.Labels()
	if strings.Join(got, ",") != "queue,run" {
		t.Fatalf("Labels = %v", got)
	}
}

func TestHistogramVecCardinalityBound(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("ca_ruleset_seconds", "by ruleset", "ruleset", []float64{1})
	v.maxSeries = 2
	v.With("a").Observe(1)
	v.With("b").Observe(1)
	over1 := v.With("hostile-1")
	over2 := v.With("hostile-2")
	if over1 != over2 {
		t.Fatal("overflow values must share one series")
	}
	if over1 != v.With(overflowSeries) {
		t.Fatal("overflow series must be addressable as \"other\"")
	}
	over1.Observe(1)
	got := v.Labels()
	if strings.Join(got, ",") != "a,b,other" {
		t.Fatalf("Labels = %v, want bounded set with overflow", got)
	}
}

func TestHistogramVecWriteProm(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("ca_stage_seconds", "serving latency by stage", "stage", []float64{0.1, 1})
	v.With("queue").Observe(0.05)
	v.With("queue").Observe(0.5)
	v.With(`we"ird`).Observe(2)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ca_stage_seconds histogram",
		`ca_stage_seconds_bucket{stage="queue",le="0.1"} 1`,
		`ca_stage_seconds_bucket{stage="queue",le="1"} 2`,
		`ca_stage_seconds_bucket{stage="queue",le="+Inf"} 2`,
		`ca_stage_seconds_sum{stage="queue"} 0.55`,
		`ca_stage_seconds_count{stage="queue"} 2`,
		`ca_stage_seconds_bucket{stage="we\"ird",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE ca_stage_seconds") != 1 {
		t.Fatal("vec must render one TYPE header for the whole family")
	}
}

func TestHistogramVecJSON(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("ca_stage_seconds", "", "stage", []float64{1})
	v.With("wal").Observe(0.5)
	var b bytes.Buffer
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]map[string]struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(b.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["ca_stage_seconds"]["wal"].Count != 1 {
		t.Fatalf("json = %s", b.String())
	}
}

func TestHistogramVecGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	v1 := reg.HistogramVec("ca_stage_seconds", "", "stage", []float64{1})
	v2 := reg.HistogramVec("ca_stage_seconds", "", "stage", []float64{1})
	if v1 != v2 {
		t.Fatal("same name must return the same vec")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a vec name as a counter must panic")
		}
	}()
	reg.Counter("ca_stage_seconds", "")
}

// TestHistogramVecConcurrent exercises first-use series creation racing
// with observation and rendering under -race.
func TestHistogramVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("ca_stage_seconds", "", "stage", []float64{0.1, 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.With(fmt.Sprintf("s%d", i%10)).Observe(float64(i) / 100)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			_ = reg.WritePrometheus(&b)
			v.Labels()
		}
	}()
	wg.Wait()
	var total int64
	for _, l := range v.Labels() {
		total += v.With(l).Count()
	}
	if total != 8*200 {
		t.Fatalf("observations lost: %d, want %d", total, 8*200)
	}
}
