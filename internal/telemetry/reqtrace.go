package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ReqTrace is the request-scoped flight recorder: one trace rides a
// request's context.Context from the transport entry point (HTTP
// handler or TCP line dispatch) through worker-queue admission, machine
// leasing, the scan itself and the WAL append, collecting per-stage
// spans and string annotations (injected faults, outcomes) along the
// way. Completed traces are snapshotted into a TraceRing, so a slow,
// failed or faulted request is explainable after the fact by the trace
// id the client received.
//
// A nil *ReqTrace is valid everywhere and makes every method a no-op,
// so instrumented code paths need no "is tracing on" conditionals —
// the disabled configuration costs one context lookup per seam.
type ReqTrace struct {
	id    string
	op    string
	start time.Time

	mu      sync.Mutex
	ruleset string
	stages  []*Span
	notes   []StrAttr
	outcome string
	errmsg  string
	done    bool
	total   time.Duration
}

// StrAttr is one string annotation on a trace (fault points, outcome
// detail).
type StrAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// traceProc is a per-process random prefix so ids from different server
// instances never collide; traceSeq makes ids unique within a process.
var (
	traceProc = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Fall back to the process start time; ids stay unique within
			// the process via traceSeq either way.
			binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:]))
	}()
	traceSeq atomic.Uint64
)

// NewReqTrace opens a trace for one request of the given operation.
func NewReqTrace(op string) *ReqTrace {
	return &ReqTrace{
		id:    fmt.Sprintf("%s-%08d", traceProc, traceSeq.Add(1)),
		op:    op,
		start: time.Now(),
	}
}

// NewReqTraceWithID opens a trace under a caller-supplied id — the
// cross-node propagation path: a cluster router mints the id once and
// every node adopting it (via the X-CA-Trace-Id request header) records
// its local stages under the same id, so one client request can be
// followed across every flight recorder it touched. An empty id falls
// back to a fresh one.
func NewReqTraceWithID(op, id string) *ReqTrace {
	if id == "" {
		return NewReqTrace(op)
	}
	return &ReqTrace{id: id, op: op, start: time.Now()}
}

// ID returns the trace id ("" on a nil trace) — the value echoed to the
// client as X-CA-Trace-Id and accepted by /debug/requests?id=.
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartStage opens a named stage span (queue, lease, run, wal). Stages
// may nest or overlap; the report orders them by start time. Safe on a
// nil trace (returns a nil span whose methods are no-ops).
func (t *ReqTrace) StartStage(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.stages = append(t.stages, s)
	t.mu.Unlock()
	return s
}

// SetRuleset records which rule set the request targeted.
func (t *ReqTrace) SetRuleset(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ruleset = name
	t.mu.Unlock()
}

// Annotate appends one string annotation. Unlike Span.SetAttr it never
// overwrites: annotating "fault" twice records two entries, so every
// injected fault that touched the request stays visible.
func (t *ReqTrace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notes = append(t.notes, StrAttr{Key: key, Value: value})
	t.mu.Unlock()
}

// Finish closes the trace with an outcome ("ok", "error", "timeout",
// "fault", "panic") and an optional error message. Finishing twice
// keeps the first outcome.
func (t *ReqTrace) Finish(outcome, errmsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.outcome = outcome
		t.errmsg = errmsg
		t.total = time.Since(t.start)
	}
	t.mu.Unlock()
}

// ReqReport is the immutable snapshot of one trace — what the TraceRing
// stores and /debug/requests serves.
type ReqReport struct {
	ID         string        `json:"id"`
	Op         string        `json:"op"`
	Ruleset    string        `json:"ruleset,omitempty"`
	Start      time.Time     `json:"start"`
	DurationMS float64       `json:"duration_ms"`
	Outcome    string        `json:"outcome"`
	Error      string        `json:"error,omitempty"`
	Stages     []StageReport `json:"stages,omitempty"`
	Notes      []StrAttr     `json:"notes,omitempty"`
}

// StageReport is one stage of a ReqReport. StartMS is the stage's
// offset from the trace start, so overlap and dead time between stages
// are visible.
type StageReport struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// Report snapshots the trace. Stages are sorted by start time (name as
// the tie-break), so concurrent span creation still yields a
// deterministic report. Unfinished traces and stages report time
// elapsed so far. Safe on a nil trace (returns nil).
func (t *ReqTrace) Report() *ReqReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.total
	outcome := t.outcome
	if !t.done {
		total = time.Since(t.start)
		outcome = "in-flight"
	}
	r := &ReqReport{
		ID:         t.id,
		Op:         t.op,
		Ruleset:    t.ruleset,
		Start:      t.start,
		DurationMS: ms(total),
		Outcome:    outcome,
		Error:      t.errmsg,
		Notes:      append([]StrAttr(nil), t.notes...),
	}
	stages := append([]*Span(nil), t.stages...)
	sort.SliceStable(stages, func(i, j int) bool {
		if stages[i].start.Equal(stages[j].start) {
			return stages[i].name < stages[j].name
		}
		return stages[i].start.Before(stages[j].start)
	})
	for _, s := range stages {
		s.mu.Lock()
		d := s.dur
		if !s.done {
			d = time.Since(s.start)
		}
		r.Stages = append(r.Stages, StageReport{
			Name:       s.name,
			StartMS:    ms(s.start.Sub(t.start)),
			DurationMS: ms(d),
			Attrs:      append([]Attr(nil), s.attrs...),
		})
		s.mu.Unlock()
	}
	return r
}

// Faulted reports whether the trace carries at least one injected-fault
// annotation; the TraceRing pins such traces alongside slow and error
// ones.
func (r *ReqReport) Faulted() bool {
	if r == nil {
		return false
	}
	for _, n := range r.Notes {
		if n.Key == "fault" {
			return true
		}
	}
	return false
}

// Format writes a human-readable breakdown:
//
//	a1b2c3d4-00000042  match  ruleset=ids  ok  12.41ms
//	  queue    +0.00ms   0.03ms
//	  lease    +0.04ms   0.11ms  machines=1
//	  run      +0.15ms  12.02ms  bytes=65536 matches=3
func (r *ReqReport) Format(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "(no trace)")
		return err
	}
	rs := ""
	if r.Ruleset != "" {
		rs = "  ruleset=" + r.Ruleset
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s  %s  %.2fms\n", r.ID, r.Op, rs, r.Outcome, r.DurationMS); err != nil {
		return err
	}
	for _, s := range r.Stages {
		var attrs strings.Builder
		for _, a := range s.Attrs {
			fmt.Fprintf(&attrs, " %s=%d", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "  %-8s %+9.2fms %9.2fms %s\n", s.Name, s.StartMS, s.DurationMS, attrs.String()); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note     %s=%s\n", n.Key, n.Value); err != nil {
			return err
		}
	}
	if r.Error != "" {
		if _, err := fmt.Fprintf(w, "  error    %s\n", r.Error); err != nil {
			return err
		}
	}
	return nil
}

// String renders the report as Format does.
func (r *ReqReport) String() string {
	var b strings.Builder
	_ = r.Format(&b)
	return b.String()
}

// reqTraceKey carries a *ReqTrace through a context.Context.
type reqTraceKey struct{}

// WithReqTrace returns ctx carrying rt (ctx itself when rt is nil).
func WithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// ReqTraceFrom returns the trace carried by ctx, or nil. The nil result
// is directly usable: every ReqTrace method is a no-op on nil.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return rt
}

// TraceRing retains completed request traces for /debug/requests. It is
// two fixed-size lock-free rings over one id space:
//
//   - recent holds the last N completed traces, whatever their outcome;
//   - pinned holds only the interesting ones — slow (duration at or
//     above the slow threshold), error/timeout/panic outcomes, and
//     traces carrying injected-fault annotations — so a burst of fast,
//     healthy traffic can never evict the one trace that explains an
//     incident. Pinned traces are bounded by their own N slots, evicted
//     only by newer pinned traces.
//
// Writers only do an atomic increment and an atomic pointer store, so
// tracing stays off the serving hot path's lock graph entirely.
type TraceRing struct {
	slow   time.Duration
	recent ringSlots
	pinned ringSlots
}

// ringSlots is one lock-free overwrite ring of reports.
type ringSlots struct {
	slots []atomic.Pointer[ReqReport]
	next  atomic.Uint64
}

func (r *ringSlots) add(rep *ReqReport) {
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(rep)
}

func (r *ringSlots) snapshot() []*ReqReport {
	out := make([]*ReqReport, 0, len(r.slots))
	for i := range r.slots {
		if rep := r.slots[i].Load(); rep != nil {
			out = append(out, rep)
		}
	}
	return out
}

// DefaultTraceRingSize is the per-ring capacity when none is given.
const DefaultTraceRingSize = 256

// NewTraceRing builds a ring of n recent plus n pinned slots (n <= 0
// uses DefaultTraceRingSize). Traces at least slow long are pinned;
// slow <= 0 disables slowness pinning (errors and faults still pin).
func NewTraceRing(n int, slow time.Duration) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{
		slow:   slow,
		recent: ringSlots{slots: make([]atomic.Pointer[ReqReport], n)},
		pinned: ringSlots{slots: make([]atomic.Pointer[ReqReport], n)},
	}
}

// SlowThreshold returns the pinning threshold.
func (r *TraceRing) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// Add records one completed trace. Safe on a nil ring and a nil report.
func (r *TraceRing) Add(rep *ReqReport) {
	if r == nil || rep == nil {
		return
	}
	r.recent.add(rep)
	if r.isPinned(rep) {
		r.pinned.add(rep)
	}
}

func (r *TraceRing) isPinned(rep *ReqReport) bool {
	if rep.Outcome != "ok" {
		return true
	}
	if r.slow > 0 && rep.DurationMS >= ms(r.slow) {
		return true
	}
	return rep.Faulted()
}

// Find returns the retained trace with the given id, or nil. Pinned
// slots are searched first: they live longer.
func (r *TraceRing) Find(id string) *ReqReport {
	if r == nil {
		return nil
	}
	for _, rep := range r.pinned.snapshot() {
		if rep.ID == id {
			return rep
		}
	}
	for _, rep := range r.recent.snapshot() {
		if rep.ID == id {
			return rep
		}
	}
	return nil
}

// RingSnapshot is the /debug/requests payload: the retained traces,
// newest first in each section. A slow or failed trace that is still
// recent appears in both sections.
type RingSnapshot struct {
	SlowMS float64      `json:"slow_ms"`
	Recent []*ReqReport `json:"recent"`
	Pinned []*ReqReport `json:"pinned"`
}

// Snapshot returns the retained traces, each section sorted newest
// first (ties broken by id so the order is deterministic).
func (r *TraceRing) Snapshot() *RingSnapshot {
	if r == nil {
		return &RingSnapshot{}
	}
	s := &RingSnapshot{
		SlowMS: ms(r.slow),
		Recent: sortReports(r.recent.snapshot()),
		Pinned: sortReports(r.pinned.snapshot()),
	}
	return s
}

// All returns every retained trace exactly once (a trace held by both
// sections is deduplicated by id), newest first.
func (r *TraceRing) All() []*ReqReport {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []*ReqReport
	for _, rep := range append(r.pinned.snapshot(), r.recent.snapshot()...) {
		if !seen[rep.ID] {
			seen[rep.ID] = true
			out = append(out, rep)
		}
	}
	return sortReports(out)
}

func sortReports(reps []*ReqReport) []*ReqReport {
	sort.SliceStable(reps, func(i, j int) bool {
		if reps[i].Start.Equal(reps[j].Start) {
			return reps[i].ID > reps[j].ID
		}
		return reps[i].Start.After(reps[j].Start)
	})
	return reps
}
