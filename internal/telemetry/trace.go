package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace records the phase breakdown of one compile-pipeline invocation
// (regex parse → Glushkov construction → CC packing → k-way partitioning →
// budget repair → placement). A nil *Trace is valid everywhere and makes
// every method a no-op, so instrumented code paths need no conditionals.
type Trace struct {
	mu     sync.Mutex
	name   string
	start  time.Time
	phases []*Span
}

// NewTrace opens a trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// StartPhase opens a span. Phases are recorded in start order; nested or
// overlapping spans are allowed (the report is a flat list). Safe on a nil
// trace (returns a nil span, whose methods are also no-ops).
func (t *Trace) StartPhase(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.phases = append(t.phases, s)
	t.mu.Unlock()
	return s
}

// Span is one timed pipeline phase with integer attributes (state counts,
// partition counts, repair iterations, …).
type Span struct {
	mu    sync.Mutex
	name  string
	start time.Time
	dur   time.Duration
	done  bool
	attrs []Attr
}

// Attr is one integer annotation on a span.
type Attr struct {
	Key   string
	Value int64
}

// SetAttr records (or overwrites) an attribute. Safe on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// AddAttr adds v to an attribute, creating it at v. Safe on a nil span.
func (s *Span) AddAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// End closes the span. Ending twice keeps the first duration. Safe on a
// nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	s.mu.Unlock()
}

// CompileReport is the structured result of a trace: the per-phase wall
// times and attributes of one compilation.
type CompileReport struct {
	Name   string
	Total  time.Duration
	Phases []PhaseReport
}

// PhaseReport is one phase of a CompileReport.
type PhaseReport struct {
	Name     string
	Duration time.Duration
	Attrs    []Attr
}

// Report snapshots the trace. Unfinished spans report the time elapsed so
// far. Phases are snapshotted in start-time order (name as the
// tie-break), not append order, so concurrent span creation still
// yields a deterministic report. Safe on a nil trace (returns nil).
func (t *Trace) Report() *CompileReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &CompileReport{Name: t.name, Total: time.Since(t.start)}
	phases := append([]*Span(nil), t.phases...)
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].start.Equal(phases[j].start) {
			return phases[i].name < phases[j].name
		}
		return phases[i].start.Before(phases[j].start)
	})
	for _, s := range phases {
		s.mu.Lock()
		d := s.dur
		if !s.done {
			d = time.Since(s.start)
		}
		r.Phases = append(r.Phases, PhaseReport{
			Name:     s.name,
			Duration: d,
			Attrs:    append([]Attr(nil), s.attrs...),
		})
		s.mu.Unlock()
	}
	return r
}

// Format writes a human-readable phase breakdown:
//
//	compile-regex                 1.23ms total
//	  regexc.parse                  0.11ms  patterns=3
//	  regexc.glushkov               0.31ms  states=42
//	  map.components                0.02ms  components=3 large=0
func (r *CompileReport) Format(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "(no compile trace)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %9.2fms total\n", r.Name, ms(r.Total)); err != nil {
		return err
	}
	for _, p := range r.Phases {
		var attrs strings.Builder
		for _, a := range p.Attrs {
			fmt.Fprintf(&attrs, " %s=%d", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "  %-28s %9.2fms %s\n", p.Name, ms(p.Duration), attrs.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the report as Format does.
func (r *CompileReport) String() string {
	var b strings.Builder
	_ = r.Format(&b)
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Attr lookup helper: value of key in the phase, or 0.
func (p PhaseReport) Attr(key string) int64 {
	for _, a := range p.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return 0
}

// Phase returns the first phase with the given name, or nil.
func (r *CompileReport) Phase(name string) *PhaseReport {
	if r == nil {
		return nil
	}
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}
