package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ca_test_total", "a test counter").Add(11)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "ca_test_total 11") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get(t, base+"/metrics.json")
	var obj map[string]any
	if code != http.StatusOK || json.Unmarshal([]byte(body), &obj) != nil {
		t.Errorf("/metrics.json = %d %q", code, body)
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars not JSON: %v", err)
	} else if _, ok := vars["cacheautomaton"]; !ok {
		t.Errorf("/debug/vars missing cacheautomaton registry: %v", body)
	}
	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	// A second Serve against the same registry must not panic on the
	// already-published expvar.
	srv2, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}

func TestMachineCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewMachineCollector(reg)
	c.ObserveCycle(10, 2, 1, 3)
	c.ObserveCycle(20, 3, 0, 0)
	c.ObserveMatches(5)
	c.ObserveOverflow()
	c.ObserveRun(2, 0.5, 40)
	if got := c.Symbols.Value(); got != 2 {
		t.Errorf("symbols = %d", got)
	}
	if got := c.SymbolsPerSecond.Value(); got != 4 {
		t.Errorf("symbols/sec = %v, want 4", got)
	}
	if got := c.ActiveStates.Mean(); got != 15 {
		t.Errorf("active-state mean = %v, want 15", got)
	}
	if got := c.G4Crossings.Value(); got != 3 {
		t.Errorf("g4 = %d", got)
	}
	if got := c.OutputBufferHighWater.Value(); got != 40 {
		t.Errorf("highwater = %d", got)
	}
	// Second collector on the same registry shares instruments.
	c2 := NewMachineCollector(reg)
	if c2.Symbols != c.Symbols {
		t.Error("collectors on one registry should share counters")
	}
}
