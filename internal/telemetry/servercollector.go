package telemetry

// ServerCollector aggregates the match-serving subsystem's metrics into a
// registry: request traffic and latency, worker-pool backpressure, and the
// streaming-session lifecycle. All instruments are atomic, so one
// collector is shared by every transport (HTTP and TCP) and handler
// goroutine of a server.
type ServerCollector struct {
	// Requests counts API operations started (all transports).
	Requests *Counter
	// RequestErrors counts operations that returned an error to the client.
	RequestErrors *Counter
	// Rejected counts operations shed by backpressure (queue full or
	// queue-wait timeout) or refused because the server is draining.
	Rejected *Counter
	// RequestSeconds is the end-to-end operation latency distribution.
	RequestSeconds *Histogram
	// InFlight is the number of operations currently executing.
	InFlight *Gauge
	// QueueDepth is the number of match requests waiting for a worker slot.
	QueueDepth *Gauge
	// MatchInputBytes totals the bytes scanned by one-shot match requests.
	MatchInputBytes *Counter
	// MatchReports totals the match events returned to clients.
	MatchReports *Counter
	// SessionsActive is the current open-session count.
	SessionsActive *Gauge
	// SessionsOpened / SessionsResumed / SessionsSuspended / SessionsExpired
	// count session lifecycle transitions (resumed sessions are also counted
	// as opened; expired means reaped by the idle timeout).
	SessionsOpened    *Counter
	SessionsResumed   *Counter
	SessionsSuspended *Counter
	SessionsExpired   *Counter
	// SessionBytes totals bytes fed through streaming sessions.
	SessionBytes *Counter
	// Rulesets is the number of compiled rule sets currently loaded.
	Rulesets *Gauge
	// Panics counts handler/worker panics recovered by the resilience
	// layer (each one returned a structured 500 instead of killing the
	// process).
	Panics *Counter
	// Timeouts counts operations stopped by deadline-aware cancellation
	// (Config.RequestTimeout or a client disconnect).
	Timeouts *Counter
	// WALRecords / WALReplayed count session-WAL records appended and
	// records replayed at startup; WALErrors counts append failures
	// (after which the WAL fail-stops until restart).
	WALRecords  *Counter
	WALReplayed *Counter
	WALErrors   *Counter
	// BatchSize is the members-per-flush distribution of the request
	// coalescer; BatchWait is how long each member sat waiting for its
	// batch to flush; BatchedRequests counts requests served through
	// batched machine sweeps.
	BatchSize       *Histogram
	BatchWait       *Histogram
	BatchedRequests *Counter
	// StageSeconds breaks serving latency down by pipeline stage
	// (stage = queue | batch | lease | run | wal), fed from the flight
	// recorder's per-request stage spans.
	StageSeconds *HistogramVec
	// RulesetSeconds is end-to-end request latency per rule set, for
	// match and feed operations (cardinality-bounded; overflow lands in
	// the "other" series).
	RulesetSeconds *HistogramVec
	// SlowRequests counts requests at or above the slow threshold that
	// the flight recorder pinned.
	SlowRequests *Counter
	// CacheHits / CacheMisses count compile-cache lookups that loaded a
	// serialized automaton vs fell through to a full compile; CacheErrors
	// counts corrupted or unwritable cache entries (each one falls back
	// to recompiling, never a failed boot).
	CacheHits   *Counter
	CacheMisses *Counter
	CacheErrors *Counter
	// Reloads counts atomic rule-set swaps through the reload endpoint.
	Reloads *Counter
}

// NewServerCollector registers the serving metrics (names prefixed
// ca_server_) in reg and returns the collector. reg == nil uses Default().
func NewServerCollector(reg *Registry) *ServerCollector {
	if reg == nil {
		reg = Default()
	}
	latencyBuckets := ExpBuckets(0.0001, 4, 10) // 100µs … ~26s
	return &ServerCollector{
		Requests:          reg.Counter("ca_server_requests_total", "API operations started"),
		RequestErrors:     reg.Counter("ca_server_request_errors_total", "API operations that returned an error"),
		Rejected:          reg.Counter("ca_server_rejected_total", "requests shed by backpressure or drain"),
		RequestSeconds:    reg.Histogram("ca_server_request_seconds", "operation latency in seconds", latencyBuckets),
		InFlight:          reg.Gauge("ca_server_inflight_requests", "operations currently executing"),
		QueueDepth:        reg.Gauge("ca_server_match_queue_depth", "match requests waiting for a worker slot"),
		MatchInputBytes:   reg.Counter("ca_server_match_input_bytes_total", "bytes scanned by one-shot match requests"),
		MatchReports:      reg.Counter("ca_server_match_reports_total", "match events returned to clients"),
		SessionsActive:    reg.Gauge("ca_server_sessions_active", "open streaming sessions"),
		SessionsOpened:    reg.Counter("ca_server_sessions_opened_total", "streaming sessions opened (including resumed)"),
		SessionsResumed:   reg.Counter("ca_server_sessions_resumed_total", "sessions resumed from a suspended snapshot"),
		SessionsSuspended: reg.Counter("ca_server_sessions_suspended_total", "sessions suspended for migration"),
		SessionsExpired:   reg.Counter("ca_server_sessions_expired_total", "sessions reaped by the idle timeout"),
		SessionBytes:      reg.Counter("ca_server_session_bytes_total", "bytes fed through streaming sessions"),
		Rulesets:          reg.Gauge("ca_server_rulesets", "compiled rule sets loaded"),
		Panics:            reg.Counter("ca_server_panics_total", "handler/worker panics recovered into structured errors"),
		Timeouts:          reg.Counter("ca_server_timeouts_total", "operations stopped by deadline-aware cancellation"),
		WALRecords:        reg.Counter("ca_wal_records_total", "session WAL records appended"),
		WALReplayed:       reg.Counter("ca_wal_replayed_total", "session WAL records replayed at startup"),
		WALErrors:         reg.Counter("ca_wal_errors_total", "session WAL append failures (WAL fail-stops)"),
		BatchSize:         reg.Histogram("ca_server_batch_size", "match requests coalesced per batch flush", ExpBuckets(1, 2, 9)),
		BatchWait:         reg.Histogram("ca_server_batch_wait_seconds", "time each request waited for its batch to flush", latencyBuckets),
		BatchedRequests:   reg.Counter("ca_server_batched_requests_total", "match requests served through batched machine sweeps"),
		StageSeconds:      reg.HistogramVec("ca_server_stage_seconds", "serving latency by pipeline stage", "stage", latencyBuckets),
		RulesetSeconds:    reg.HistogramVec("ca_server_ruleset_seconds", "end-to-end request latency by rule set", "ruleset", latencyBuckets),
		SlowRequests:      reg.Counter("ca_server_slow_requests_total", "requests at or above the slow threshold"),
		CacheHits:         reg.Counter("ca_cache_hits_total", "compile-cache lookups served from a serialized automaton"),
		CacheMisses:       reg.Counter("ca_cache_misses_total", "compile-cache lookups that fell through to a full compile"),
		CacheErrors:       reg.Counter("ca_cache_errors_total", "corrupted or unwritable compile-cache entries (recovered by recompiling)"),
		Reloads:           reg.Counter("ca_server_reloads_total", "atomic rule-set swaps through the reload endpoint"),
	}
}
