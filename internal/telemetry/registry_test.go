package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax(9) = %d", g.Value())
	}
	f := r.FloatGauge("f", "help f")
	f.Set(1.5)
	f.Add(1.25)
	if got := f.Value(); got != 2.75 {
		t.Errorf("float gauge = %v, want 2.75", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "")
	b := r.Counter("same", "")
	if a != b {
		t.Error("same-name counters should be the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge should panic")
		}
	}()
	r.Gauge("same", "")
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 105.5 {
		t.Errorf("sum = %v, want 105.5", h.Sum())
	}
	if got, want := h.Mean(), 105.5/5; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE h histogram",
		`h_bucket{le="1"} 2`,    // 0 and 1
		`h_bucket{le="2"} 3`,    // + 1.5
		`h_bucket{le="4"} 4`,    // + 3
		`h_bucket{le="+Inf"} 5`, // + 100
		"h_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(2)
	r.Gauge("a", "the a gauge").Set(-3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Sorted by name, HELP before TYPE before the sample.
	if !strings.Contains(out, "# HELP a the a gauge\n# TYPE a gauge\na -3\n") {
		t.Errorf("gauge exposition malformed:\n%s", out)
	}
	if strings.Index(out, "\na -3") > strings.Index(out, "\nb_total 2") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if obj["c_total"].(float64) != 3 {
		t.Errorf("c_total = %v", obj["c_total"])
	}
	h := obj["h"].(map[string]any)
	if h["count"].(float64) != 1 {
		t.Errorf("h.count = %v", h["count"])
	}
}

// TestConcurrentInstruments exercises counters, gauges and histograms from
// many writers while readers render expositions — the -race target of the
// acceptance criteria.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total", "")
			g := r.Gauge("g", "")
			f := r.FloatGauge("f", "")
			h := r.Histogram("h", "", []float64{1, 10, 100})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.SetMax(int64(w*perWriter + i))
				f.Add(0.5)
				h.ObserveInt(int64(i % 200))
			}
		}(w)
	}
	// Concurrent readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
				_ = r.WriteJSON(&buf)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("h", "", nil).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := r.FloatGauge("f", "").Value(); got != writers*perWriter*0.5 {
		t.Errorf("float gauge = %v, want %v", got, writers*perWriter*0.5)
	}
	if got := r.Gauge("g", "").Value(); got != writers*perWriter-1 {
		t.Errorf("gauge high-water = %d, want %d", got, writers*perWriter-1)
	}
}
