package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReqTraceLifecycle(t *testing.T) {
	rt := NewReqTrace("match")
	if rt.ID() == "" {
		t.Fatal("trace id empty")
	}
	rt.SetRuleset("ids")
	sp := rt.StartStage("queue")
	sp.SetAttr("depth", 3)
	sp.End()
	rt.Annotate("fault", "server.match")
	rt.Finish("ok", "")
	rt.Finish("error", "second finish must lose") // first outcome wins

	r := rt.Report()
	if r.ID != rt.ID() || r.Op != "match" || r.Ruleset != "ids" {
		t.Fatalf("report header = %q/%q/%q", r.ID, r.Op, r.Ruleset)
	}
	if r.Outcome != "ok" || r.Error != "" {
		t.Fatalf("outcome = %q err=%q, want first Finish to stick", r.Outcome, r.Error)
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != "queue" {
		t.Fatalf("stages = %+v", r.Stages)
	}
	if len(r.Stages[0].Attrs) != 1 || r.Stages[0].Attrs[0].Key != "depth" || r.Stages[0].Attrs[0].Value != 3 {
		t.Fatalf("stage attrs = %+v", r.Stages[0].Attrs)
	}
	if len(r.Notes) != 1 || r.Notes[0] != (StrAttr{"fault", "server.match"}) {
		t.Fatalf("notes = %+v", r.Notes)
	}
	if !r.Faulted() {
		t.Fatal("Faulted() = false with a fault note")
	}
}

func TestReqTraceInFlightReport(t *testing.T) {
	rt := NewReqTrace("feed")
	sp := rt.StartStage("run") // never ended
	_ = sp
	r := rt.Report()
	if r.Outcome != "in-flight" {
		t.Fatalf("unfinished outcome = %q, want in-flight", r.Outcome)
	}
	if len(r.Stages) != 1 || r.Stages[0].DurationMS < 0 {
		t.Fatalf("open stage should report elapsed time, got %+v", r.Stages)
	}
}

func TestReqTraceReportSortsStages(t *testing.T) {
	rt := NewReqTrace("match")
	base := time.Now()
	// Install spans out of order with controlled starts; Report must sort
	// by start time with name as the tie-break.
	rt.stages = []*Span{
		{name: "wal", start: base.Add(30 * time.Millisecond)},
		{name: "run", start: base.Add(10 * time.Millisecond)},
		{name: "queue", start: base},
		{name: "lease", start: base.Add(10 * time.Millisecond)},
	}
	var got []string
	for _, s := range rt.Report().Stages {
		got = append(got, s.Name)
	}
	want := "queue,lease,run,wal"
	if strings.Join(got, ",") != want {
		t.Fatalf("stage order = %v, want %s", got, want)
	}
}

func TestNilReqTraceIsNoop(t *testing.T) {
	var rt *ReqTrace
	if rt.ID() != "" {
		t.Fatal("nil trace id")
	}
	sp := rt.StartStage("queue") // nil span
	sp.SetAttr("k", 1)
	sp.AddAttr("k", 1)
	sp.End()
	rt.SetRuleset("x")
	rt.Annotate("fault", "p")
	rt.Finish("ok", "")
	if rt.Report() != nil {
		t.Fatal("nil trace must report nil")
	}
}

func TestWithReqTraceRoundTrip(t *testing.T) {
	ctx := context.Background()
	if ReqTraceFrom(ctx) != nil {
		t.Fatal("empty ctx must carry no trace")
	}
	if WithReqTrace(ctx, nil) != ctx {
		t.Fatal("nil trace must not wrap ctx")
	}
	rt := NewReqTrace("match")
	if got := ReqTraceFrom(WithReqTrace(ctx, rt)); got != rt {
		t.Fatalf("round trip = %p, want %p", got, rt)
	}
}

// rep builds a completed report for ring tests with a deterministic id
// and start time.
func rep(i int, outcome string, durMS float64, notes ...StrAttr) *ReqReport {
	return &ReqReport{
		ID:         fmt.Sprintf("t-%08d", i),
		Op:         "match",
		Start:      time.Unix(0, int64(i)*int64(time.Millisecond)),
		DurationMS: durMS,
		Outcome:    outcome,
		Notes:      notes,
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4, 0)
	for i := 0; i < 10; i++ {
		r.Add(rep(i, "ok", 1))
	}
	s := r.Snapshot()
	if len(s.Recent) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(s.Recent))
	}
	// Newest first: 9,8,7,6.
	for i, want := range []int{9, 8, 7, 6} {
		if s.Recent[i].ID != rep(want, "ok", 1).ID {
			t.Fatalf("recent[%d] = %s, want t-%08d", i, s.Recent[i].ID, want)
		}
	}
	if len(s.Pinned) != 0 {
		t.Fatalf("healthy fast traces must not pin, got %d", len(s.Pinned))
	}
	if r.Find(rep(0, "ok", 1).ID) != nil {
		t.Fatal("evicted trace still findable")
	}
	if r.Find(rep(9, "ok", 1).ID) == nil {
		t.Fatal("retained trace not findable")
	}
}

func TestTraceRingPinsInterestingTraces(t *testing.T) {
	r := NewTraceRing(4, 100*time.Millisecond)
	errRep := rep(0, "error", 1)
	slowRep := rep(1, "ok", 150)
	faultRep := rep(2, "ok", 1, StrAttr{"fault", "server.wal.append"})
	r.Add(errRep)
	r.Add(slowRep)
	r.Add(faultRep)
	// Flood with healthy traffic: pinned traces must survive.
	for i := 10; i < 30; i++ {
		r.Add(rep(i, "ok", 1))
	}
	for _, want := range []*ReqReport{errRep, slowRep, faultRep} {
		if r.Find(want.ID) == nil {
			t.Fatalf("pinned trace %s (%s) evicted by healthy traffic", want.ID, want.Outcome)
		}
	}
	s := r.Snapshot()
	if len(s.Pinned) != 3 {
		t.Fatalf("pinned = %d, want 3", len(s.Pinned))
	}
	if s.SlowMS != 100 {
		t.Fatalf("SlowMS = %v, want 100", s.SlowMS)
	}
}

func TestTraceRingSlowDisabled(t *testing.T) {
	r := NewTraceRing(4, 0) // slow <= 0: only errors and faults pin
	r.Add(rep(0, "ok", 1e9))
	if len(r.Snapshot().Pinned) != 0 {
		t.Fatal("slow pinning must be off with threshold 0")
	}
	r.Add(rep(1, "timeout", 1))
	if len(r.Snapshot().Pinned) != 1 {
		t.Fatal("non-ok outcomes must still pin")
	}
}

func TestTraceRingAllDedupes(t *testing.T) {
	r := NewTraceRing(4, 0)
	bad := rep(5, "error", 1)
	r.Add(bad) // lands in both recent and pinned
	r.Add(rep(6, "ok", 1))
	all := r.All()
	var hits int
	for _, rp := range all {
		if rp.ID == bad.ID {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("trace in both sections appeared %d times in All, want 1", hits)
	}
	if len(all) != 2 {
		t.Fatalf("All = %d traces, want 2", len(all))
	}
	if all[0].ID != rep(6, "ok", 1).ID {
		t.Fatalf("All must be newest first, got %s first", all[0].ID)
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Add(rep(0, "ok", 1))
	r.Add(nil)
	if r.Find("x") != nil || r.All() != nil || r.SlowThreshold() != 0 {
		t.Fatal("nil ring must be inert")
	}
	if s := r.Snapshot(); s == nil || len(s.Recent) != 0 {
		t.Fatal("nil ring snapshot must be empty, not nil")
	}
	NewTraceRing(4, 0).Add(nil) // nil report is ignored
}

// TestTraceRingConcurrent exercises the lock-free rings under -race:
// many writers completing traces while readers snapshot and search.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8, time.Millisecond)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				rt := NewReqTrace("match")
				sp := rt.StartStage("run")
				sp.AddAttr("bytes", 64)
				sp.End()
				outcome := "ok"
				if i%7 == 0 {
					outcome = "error"
				}
				rt.Finish(outcome, "")
				r.Add(rt.Report())
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if len(s.Recent) > 8 || len(s.Pinned) > 8 {
				panic("ring overflowed its capacity")
			}
			r.Find("nope")
			r.All()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := len(r.Snapshot().Recent); got != 8 {
		t.Fatalf("recent ring holds %d traces after 2000 adds, want 8", got)
	}
}

func TestReqReportFormat(t *testing.T) {
	rt := NewReqTrace("match")
	rt.SetRuleset("ids")
	sp := rt.StartStage("run")
	sp.SetAttr("bytes", 65536)
	sp.End()
	rt.Annotate("fault", "server.match")
	rt.Finish("error", "injected fault at server.match")
	out := rt.Report().String()
	for _, want := range []string{rt.ID(), "match", "ruleset=ids", "error", "run", "bytes=65536", "fault=server.match", "injected fault"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
	var nilRep *ReqReport
	if got := nilRep.String(); !strings.Contains(got, "no trace") {
		t.Fatalf("nil report String = %q", got)
	}
	if nilRep.Faulted() {
		t.Fatal("nil report Faulted")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewReqTrace("x").ID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}
