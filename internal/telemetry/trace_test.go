package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracePhases(t *testing.T) {
	tr := NewTrace("compile")
	s := tr.StartPhase("parse")
	s.SetAttr("patterns", 3)
	s.AddAttr("patterns", 2)
	s.SetAttr("states", 40)
	time.Sleep(time.Millisecond)
	s.End()
	s2 := tr.StartPhase("map")
	s2.End()

	r := tr.Report()
	if r.Name != "compile" || len(r.Phases) != 2 {
		t.Fatalf("report = %+v", r)
	}
	p := r.Phase("parse")
	if p == nil {
		t.Fatal("no parse phase")
	}
	if p.Attr("patterns") != 5 || p.Attr("states") != 40 {
		t.Errorf("attrs = %v", p.Attrs)
	}
	if p.Attr("missing") != 0 {
		t.Errorf("missing attr should read 0")
	}
	if p.Duration <= 0 || r.Total < p.Duration {
		t.Errorf("durations: phase %v total %v", p.Duration, r.Total)
	}
	out := r.String()
	for _, want := range []string{"compile", "parse", "patterns=5", "states=40", "map"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.StartPhase("anything")
	s.SetAttr("k", 1)
	s.AddAttr("k", 1)
	s.End()
	if tr.Report() != nil {
		t.Error("nil trace should report nil")
	}
	if tr.Report().Phase("x") != nil {
		t.Error("nil report Phase should be nil")
	}
	var b strings.Builder
	if err := (*CompileReport)(nil).Format(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no compile trace") {
		t.Errorf("nil report format = %q", b.String())
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("t")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := tr.StartPhase("p")
				s.AddAttr("n", 1)
				s.End()
				_ = tr.Report()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Report().Phases); got != 800 {
		t.Errorf("phases = %d, want 800", got)
	}
}
