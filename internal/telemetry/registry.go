// Package telemetry is the observability layer of the Cache Automaton
// stack: a concurrency-safe metrics registry (counters, gauges and
// fixed-bucket histograms, all built on sync/atomic), span-style tracing
// for the compile pipeline, a near-zero-cost machine run collector, and an
// HTTP exposition endpoint serving Prometheus text, expvar JSON and pprof.
//
// The package is stdlib-only by design: the paper derives its energy and
// activity figures from "per-cycle statistics on number of active states
// in each array" (§4), and this layer makes those signals first-class and
// exportable without pulling a metrics dependency into the module.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Int64
	help string
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v    atomic.Int64
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 value (rates, seconds).
type FloatGauge struct {
	bits atomic.Uint64
	help string
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *FloatGauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; observations above the last bound land in the
// implicit +Inf bucket. All updates are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64   // scaled by sumScale for float observations
	count  atomic.Int64
	help   string
}

// sumScale keeps histogram sums integral while preserving three decimals.
const sumScale = 1000

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(v * sumScale))
	h.count.Add(1)
}

// ObserveInt records one integral observation.
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / sumScale }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// ExpBuckets returns bounds start, start*factor, … (n bounds) for
// activity-style histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is the registry's view of one instrument.
type metric interface {
	kind() string
	helpText() string
	writeProm(w io.Writer, name string) error
	jsonValue() any
}

func (c *Counter) kind() string     { return "counter" }
func (c *Counter) helpText() string { return c.help }
func (c *Counter) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}
func (c *Counter) jsonValue() any { return c.Value() }

func (g *Gauge) kind() string     { return "gauge" }
func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
	return err
}
func (g *Gauge) jsonValue() any { return g.Value() }

func (g *FloatGauge) kind() string     { return "gauge" }
func (g *FloatGauge) helpText() string { return g.help }
func (g *FloatGauge) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	return err
}
func (g *FloatGauge) jsonValue() any { return g.Value() }

func (h *Histogram) kind() string     { return "histogram" }
func (h *Histogram) helpText() string { return h.help }
func (h *Histogram) writeProm(w io.Writer, name string) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

func (h *Histogram) jsonValue() any {
	buckets := make(map[string]int64, len(h.bounds)+1)
	for i, b := range h.bounds {
		buckets[formatFloat(b)] = h.counts[i].Load()
	}
	buckets["+Inf"] = h.counts[len(h.bounds)].Load()
	return map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Registry holds named instruments. Instrument constructors are
// get-or-create, so independent components can share metrics by name.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: make(map[string]metric)} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register returns the existing metric under name (checking its type) or
// installs fresh. A name registered under a different instrument type is a
// programming error and panics.
func (r *Registry) register(name string, fresh metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if fmt.Sprintf("%T", m) != fmt.Sprintf("%T", fresh) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %T (was %T)", name, fresh, m))
		}
		return m
	}
	r.metrics[name] = fresh
	return fresh
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{help: help}).(*Counter)
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{help: help}).(*Gauge)
}

// FloatGauge returns the float gauge registered under name.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.register(name, &FloatGauge{help: help}).(*FloatGauge)
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if new (bounds are sorted defensively).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1), help: help}
	return r.register(name, h).(*Histogram)
}

// names returns the registered metric names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) get(name string) metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics[name]
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range r.names() {
		m := r.get(name)
		if m == nil {
			continue
		}
		if help := m.helpText(); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.kind()); err != nil {
			return err
		}
		if err := m.writeProm(w, name); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as one JSON object, name → value
// (histograms become {count, sum, buckets}).
func (r *Registry) WriteJSON(w io.Writer) error {
	obj := make(map[string]any)
	for _, name := range r.names() {
		if m := r.get(name); m != nil {
			obj[name] = m.jsonValue()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// PublishExpvar publishes the registry under the given expvar name (a
// JSON snapshot recomputed on every /debug/vars read). Publishing the same
// name twice is a no-op, so multiple Serve calls are safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		obj := make(map[string]any)
		for _, n := range r.names() {
			if m := r.get(n); m != nil {
				obj[n] = m.jsonValue()
			}
		}
		return obj
	}))
}
