package telemetry

// ClusterCollector aggregates the cluster layer's metrics (names
// prefixed ca_cluster_): membership health, inter-node RPC traffic and
// retries, hedged match fan-out, session hand-off and checkpoint
// shipping, and placement changes. One collector belongs to one router.
type ClusterCollector struct {
	// Nodes is the number of registered members; NodesAlive /
	// NodesSuspect / NodesDead break the membership down by health
	// state (heartbeat-driven).
	Nodes        *Gauge
	NodesAlive   *Gauge
	NodesSuspect *Gauge
	NodesDead    *Gauge
	// Heartbeats counts health probes sent; HeartbeatFailures counts
	// probes that errored or timed out (each one advances a member
	// toward suspect and then dead).
	Heartbeats        *Counter
	HeartbeatFailures *Counter
	// RPCs counts inter-node calls issued by the router (all kinds);
	// RPCErrors counts calls that failed after all retry attempts;
	// RPCRetries counts the extra attempts beyond each call's first.
	RPCs       *Counter
	RPCErrors  *Counter
	RPCRetries *Counter
	// RPCSeconds is the per-call latency distribution (first byte to
	// decoded response, including retries).
	RPCSeconds *Histogram
	// HedgedMatches counts one-shot matches where the hedge fired (a
	// second replica was asked because the primary was slow or down);
	// HedgeWins counts hedged matches the fallback replica answered
	// first.
	HedgedMatches *Counter
	HedgeWins     *Counter
	// Sessions is the number of cluster sessions currently tracked by
	// the router's session table.
	Sessions *Gauge
	// Failovers counts session hand-offs forced by a failed or dead
	// owner (resume-from-last-checkpoint on the successor); Handoffs
	// counts planned migrations (rebalance after a rejoin). Both end
	// with the session serving on a different node.
	Failovers *Counter
	Handoffs  *Counter
	// HandoffSeconds is the time from deciding to move a session to its
	// successful resume on the new node.
	HandoffSeconds *Histogram
	// CheckpointsShipped / CheckpointBytes count session state snapshots
	// the router received from feed piggybacks and checkpoint calls —
	// the state that makes failover resume exact.
	CheckpointsShipped *Counter
	CheckpointBytes    *Counter
	// ArtifactsShipped counts compiled-automaton artifacts installed on
	// nodes (placement and rejoin reconciliation; receiving nodes never
	// recompile).
	ArtifactsShipped *Counter
	// Rebalances counts placement reconciliation rounds triggered by
	// membership changes (join, rejoin, death).
	Rebalances *Counter
	// PlacementsRefused counts placement changes (compiles, deletes,
	// joins, session moves) refused because the router could not see a
	// majority of members — the minority-partition degradation rule.
	PlacementsRefused *Counter
	// Proxied counts client requests the router forwarded to nodes;
	// ProxyErrors counts the ones that ultimately failed.
	Proxied     *Counter
	ProxyErrors *Counter
	// RingVersion is the monotonically increasing version of the
	// routing table served at /cluster (bumped by every membership or
	// placement change).
	RingVersion *Gauge
}

// NewClusterCollector registers the cluster metrics in reg and returns
// the collector. reg == nil uses Default().
func NewClusterCollector(reg *Registry) *ClusterCollector {
	if reg == nil {
		reg = Default()
	}
	latencyBuckets := ExpBuckets(0.0001, 4, 10) // 100µs … ~26s
	return &ClusterCollector{
		Nodes:              reg.Gauge("ca_cluster_nodes", "registered cluster members"),
		NodesAlive:         reg.Gauge("ca_cluster_nodes_alive", "members whose heartbeats pass"),
		NodesSuspect:       reg.Gauge("ca_cluster_nodes_suspect", "members with missed heartbeats, not yet dead"),
		NodesDead:          reg.Gauge("ca_cluster_nodes_dead", "members declared dead by the health checker"),
		Heartbeats:         reg.Counter("ca_cluster_heartbeats_total", "health probes sent to members"),
		HeartbeatFailures:  reg.Counter("ca_cluster_heartbeat_failures_total", "health probes that errored or timed out"),
		RPCs:               reg.Counter("ca_cluster_rpcs_total", "inter-node calls issued by the router"),
		RPCErrors:          reg.Counter("ca_cluster_rpc_errors_total", "inter-node calls failed after all retries"),
		RPCRetries:         reg.Counter("ca_cluster_rpc_retries_total", "extra inter-node call attempts beyond the first"),
		RPCSeconds:         reg.Histogram("ca_cluster_rpc_seconds", "inter-node call latency in seconds", latencyBuckets),
		HedgedMatches:      reg.Counter("ca_cluster_hedged_matches_total", "one-shot matches where the hedge fired"),
		HedgeWins:          reg.Counter("ca_cluster_hedge_wins_total", "hedged matches answered first by the fallback replica"),
		Sessions:           reg.Gauge("ca_cluster_sessions", "cluster sessions tracked by the router"),
		Failovers:          reg.Counter("ca_cluster_failovers_total", "session hand-offs forced by a failed or dead owner"),
		Handoffs:           reg.Counter("ca_cluster_handoffs_total", "planned session migrations (rebalance)"),
		HandoffSeconds:     reg.Histogram("ca_cluster_handoff_seconds", "session hand-off latency in seconds", latencyBuckets),
		CheckpointsShipped: reg.Counter("ca_cluster_checkpoints_shipped_total", "session state snapshots shipped to the router"),
		CheckpointBytes:    reg.Counter("ca_cluster_checkpoint_bytes_total", "bytes of shipped session state snapshots"),
		ArtifactsShipped:   reg.Counter("ca_cluster_artifacts_shipped_total", "compiled-automaton artifacts installed on nodes"),
		Rebalances:         reg.Counter("ca_cluster_rebalances_total", "placement reconciliation rounds"),
		PlacementsRefused:  reg.Counter("ca_cluster_placements_refused_total", "placement changes refused for lack of quorum"),
		Proxied:            reg.Counter("ca_cluster_proxied_requests_total", "client requests forwarded to nodes"),
		ProxyErrors:        reg.Counter("ca_cluster_proxy_errors_total", "forwarded client requests that ultimately failed"),
		RingVersion:        reg.Gauge("ca_cluster_ring_version", "routing table version served at /cluster"),
	}
}
