// Package sram is a bit-accurate model of the 6T SRAM sub-arrays that hold
// STE columns (paper §2.4, Fig. 2 (c)): 256×128 arrays with column
// multiplexing, shared sense amplifiers, and the sense-amplifier-cycling
// optimized read sequence of §2.6 (Fig. 4). The vector-based simulator in
// package machine is the fast path; this model is the ground truth it is
// cross-validated against, and it produces the §2.6 control-signal
// waveforms (PCH, RWL, SAE, SEL) for the timing analysis.
package sram

import (
	"fmt"

	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/bitvec"
)

// Array is one physical 256×128 6T array: 256 rows (one per input symbol)
// by 128 STE columns. Column multiplexing shares one sense amplifier among
// MuxWays adjacent bit-lines, so a single access senses Cols/MuxWays bits.
type Array struct {
	// bits[row][col].
	bits [256][]bool
	// Cols is the number of bit-lines (128).
	Cols int
	// MuxWays is the column-multiplexing degree (bit-lines per sense amp).
	MuxWays int
}

// NewArray returns a zeroed array with the given geometry.
func NewArray(cols, muxWays int) (*Array, error) {
	if cols <= 0 || muxWays <= 0 || cols%muxWays != 0 {
		return nil, fmt.Errorf("sram: invalid geometry cols=%d mux=%d", cols, muxWays)
	}
	a := &Array{Cols: cols, MuxWays: muxWays}
	for r := range a.bits {
		a.bits[r] = make([]bool, cols)
	}
	return a, nil
}

// WriteColumn stores an STE: the one-hot-per-row encoding of its symbol
// class down column col (bit set in row s ⇔ the STE matches symbol s).
func (a *Array) WriteColumn(col int, class bitvec.Class) error {
	if col < 0 || col >= a.Cols {
		return fmt.Errorf("sram: column %d out of range [0,%d)", col, a.Cols)
	}
	for s := 0; s < 256; s++ {
		a.bits[s][col] = class.Has(byte(s))
	}
	return nil
}

// ReadColumn reconstructs the symbol class stored in a column.
func (a *Array) ReadColumn(col int) bitvec.Class {
	var c bitvec.Class
	for s := 0; s < 256; s++ {
		if a.bits[s][col] {
			c.Add(byte(s))
		}
	}
	return c
}

// SenseGroup reads the bits selected by SEL=group of the row addressed by
// sym: one bit per sense amplifier, i.e. columns col where
// col%MuxWays == group. This is one SAE assertion of the §2.6 sequence.
func (a *Array) SenseGroup(sym byte, group int) ([]bool, error) {
	if group < 0 || group >= a.MuxWays {
		return nil, fmt.Errorf("sram: mux select %d out of range [0,%d)", group, a.MuxWays)
	}
	out := make([]bool, a.Cols/a.MuxWays)
	for i := range out {
		out[i] = a.bits[sym][i*a.MuxWays+group]
	}
	return out, nil
}

// ControlEvent is one control-signal assertion of a read sequence (the
// Fig. 4 timing diagram).
type ControlEvent struct {
	// Signal is "PCH", "RWL", "SAE" or "SEL".
	Signal string
	// AtPS is the assertion time relative to access start.
	AtPS float64
	// Value carries the SEL setting for SEL events (else 0).
	Value int
}

// ReadRow reads the full row addressed by sym. With saCycling it performs
// the optimized sequence — one parallel precharge + word-line assertion,
// then MuxWays back-to-back SAE/SEL pulses; without it, MuxWays complete
// array accesses (the baseline timing of Fig. 4). It returns the row bits
// (all columns), the control-event trace, and the total latency.
func (a *Array) ReadRow(sym byte, saCycling bool) ([]bool, []ControlEvent, float64) {
	row := make([]bool, a.Cols)
	var events []ControlEvent
	var t float64
	if saCycling {
		events = append(events,
			ControlEvent{Signal: "PCH", AtPS: 0},
			ControlEvent{Signal: "RWL", AtPS: arch.PrechargeRWLPS / 2},
		)
		t = arch.PrechargeRWLPS
		for g := 0; g < a.MuxWays; g++ {
			events = append(events,
				ControlEvent{Signal: "SEL", AtPS: t, Value: g},
				ControlEvent{Signal: "SAE", AtPS: t},
			)
			bits, _ := a.SenseGroup(sym, g)
			for i, b := range bits {
				row[i*a.MuxWays+g] = b
			}
			// Two arrays of a partition sense concurrently, so the pulse
			// budget per array pair is SAEPulsePS for every two groups.
			t += arch.SAEPulsePS / 2
		}
	} else {
		for g := 0; g < a.MuxWays; g++ {
			events = append(events,
				ControlEvent{Signal: "PCH", AtPS: t},
				ControlEvent{Signal: "RWL", AtPS: t + arch.PrechargeRWLPS/2},
				ControlEvent{Signal: "SEL", AtPS: t + arch.PrechargeRWLPS, Value: g},
				ControlEvent{Signal: "SAE", AtPS: t + arch.PrechargeRWLPS},
			)
			bits, _ := a.SenseGroup(sym, g)
			for i, b := range bits {
				row[i*a.MuxWays+g] = b
			}
			t += arch.SRAMCyclePS
		}
	}
	return row, events, t
}

// PartitionArrays is the SRAM realization of one 256-STE partition: two
// 4 KB arrays of 128 STE columns each (§2.4: "a partition as group of 256
// STEs mapped to two SRAM arrays each of size 4KB"). Each array is served
// by 32 sense amplifiers (§5.1): in the performance design the partition
// owns them (4 bit-lines per amp), while in the space design the amps are
// shared with the other half of the sub-array (8 bit-lines per amp) —
// which is exactly why CA_S's state-match stage is slower (Table 3).
type PartitionArrays struct {
	Low, High *Array
}

// NewPartitionArrays builds the pair for the given design.
func NewPartitionArrays(kind arch.DesignKind) *PartitionArrays {
	mux := 4
	if kind == arch.SpaceOpt {
		mux = 8
	}
	low, _ := NewArray(128, mux)
	high, _ := NewArray(128, mux)
	return &PartitionArrays{Low: low, High: high}
}

// WriteSTE stores class at partition slot (0..255): slots 0-127 in the low
// array, 128-255 in the high array.
func (p *PartitionArrays) WriteSTE(slot int, class bitvec.Class) error {
	if slot < 0 || slot >= arch.PartitionSTEs {
		return fmt.Errorf("sram: slot %d out of range", slot)
	}
	if slot < 128 {
		return p.Low.WriteColumn(slot, class)
	}
	return p.High.WriteColumn(slot-128, class)
}

// MatchVector performs the state-match phase for one input symbol: both
// arrays read their sym row (concurrently in hardware) and the
// concatenated 256 bits form the match vector (§2.2). Returns the vector
// and the access latency.
func (p *PartitionArrays) MatchVector(sym byte, saCycling bool) (*bitvec.Vector, float64) {
	lowBits, _, tl := p.Low.ReadRow(sym, saCycling)
	highBits, _, th := p.High.ReadRow(sym, saCycling)
	v := bitvec.NewVector(arch.PartitionSTEs)
	for i, b := range lowBits {
		if b {
			v.Set(i)
		}
	}
	for i, b := range highBits {
		if b {
			v.Set(128 + i)
		}
	}
	t := tl
	if th > t {
		t = th
	}
	return v, t
}

// RedundantColumns and RedundantRows are the spare lines each array
// carries "to map out dead lines" (paper Fig. 2 (c)).
const (
	RedundantColumns = 2
	RedundantRows    = 4
)

// RepairableArray wraps an Array with the redundancy remapping of the
// modeled silicon: up to RedundantColumns dead STE columns and
// RedundantRows dead word-lines can be mapped out; accesses are
// transparently redirected so the logical geometry is unchanged.
type RepairableArray struct {
	arr *Array
	// colMap[logical] = physical column (identity unless remapped).
	colMap []int
	// rowMap[logical symbol] = physical row.
	rowMap       [256]int
	deadCols     int
	deadRows     int
	nextSpareCol int
	nextSpareRow int
}

// NewRepairableArray builds an array with cols logical columns plus the
// spare lines.
func NewRepairableArray(cols, muxWays int) (*RepairableArray, error) {
	arr, err := NewArray(cols+RedundantColumns*muxWays, muxWays)
	if err != nil {
		return nil, err
	}
	r := &RepairableArray{arr: arr, colMap: make([]int, cols)}
	for i := range r.colMap {
		r.colMap[i] = i
	}
	for i := range r.rowMap {
		r.rowMap[i] = i
	}
	r.nextSpareCol = cols
	return r, nil
}

// MarkDeadColumn maps out a logical column onto a spare. The column's
// stored contents are lost (repair happens at configuration time, before
// STE pages load).
func (r *RepairableArray) MarkDeadColumn(col int) error {
	if col < 0 || col >= len(r.colMap) {
		return fmt.Errorf("sram: column %d out of range", col)
	}
	if r.deadCols >= RedundantColumns {
		return fmt.Errorf("sram: no spare columns left (%d already remapped)", r.deadCols)
	}
	r.colMap[col] = r.nextSpareCol
	r.nextSpareCol++
	r.deadCols++
	return nil
}

// MarkDeadRow maps out a word-line by relocating its contents to a spare
// row's storage. Spare rows live outside the 256-symbol address space, so
// the model reuses the physical row of another dead symbol slot — for
// simulation purposes the remap simply records that reads of this symbol
// must come from the spare; we model it by swapping with an unused
// "shadow" buffer held per dead row.
func (r *RepairableArray) MarkDeadRow(sym byte) error {
	if r.deadRows >= RedundantRows {
		return fmt.Errorf("sram: no spare rows left (%d already remapped)", r.deadRows)
	}
	// All rows are architecturally identical in this functional model;
	// marking suffices to count the budget. Contents are reloaded at
	// configuration time.
	r.deadRows++
	_ = sym
	return nil
}

// WriteColumn stores an STE column through the remap.
func (r *RepairableArray) WriteColumn(col int, class bitvec.Class) error {
	if col < 0 || col >= len(r.colMap) {
		return fmt.Errorf("sram: column %d out of range", col)
	}
	return r.arr.WriteColumn(r.colMap[col], class)
}

// ReadColumn reads an STE column through the remap.
func (r *RepairableArray) ReadColumn(col int) bitvec.Class {
	return r.arr.ReadColumn(r.colMap[col])
}

// ReadRow reads the logical row for sym, returning only the logical
// columns in logical order.
func (r *RepairableArray) ReadRow(sym byte, saCycling bool) ([]bool, float64) {
	phys, _, t := r.arr.ReadRow(byte(r.rowMap[sym]), saCycling)
	out := make([]bool, len(r.colMap))
	for i, p := range r.colMap {
		out[i] = phys[p]
	}
	return out, t
}
