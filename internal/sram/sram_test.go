package sram

import (
	"math"
	"math/rand"
	"testing"

	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/bitvec"
)

func TestArrayGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 8}, {128, 0}, {128, 7}, {-1, 8}} {
		if _, err := NewArray(bad[0], bad[1]); err == nil {
			t.Errorf("NewArray(%d,%d) should fail", bad[0], bad[1])
		}
	}
	if _, err := NewArray(128, 8); err != nil {
		t.Fatal(err)
	}
}

func TestColumnRoundTrip(t *testing.T) {
	a, _ := NewArray(128, 8)
	r := rand.New(rand.NewSource(5))
	classes := make([]bitvec.Class, 128)
	for col := range classes {
		var c bitvec.Class
		for k := 0; k < 1+r.Intn(20); k++ {
			c.Add(byte(r.Intn(256)))
		}
		classes[col] = c
		if err := a.WriteColumn(col, c); err != nil {
			t.Fatal(err)
		}
	}
	for col, want := range classes {
		if got := a.ReadColumn(col); got != want {
			t.Fatalf("column %d round trip failed", col)
		}
	}
	if err := a.WriteColumn(128, bitvec.Class{}); err == nil {
		t.Error("out-of-range column write should fail")
	}
}

func TestReadRowEqualsStoredBits(t *testing.T) {
	a, _ := NewArray(128, 8)
	r := rand.New(rand.NewSource(6))
	for col := 0; col < 128; col++ {
		var c bitvec.Class
		for k := 0; k < r.Intn(10); k++ {
			c.Add(byte(r.Intn(256)))
		}
		a.WriteColumn(col, c)
	}
	for trial := 0; trial < 50; trial++ {
		sym := byte(r.Intn(256))
		rowCyc, _, _ := a.ReadRow(sym, true)
		rowBase, _, _ := a.ReadRow(sym, false)
		for col := 0; col < 128; col++ {
			want := a.ReadColumn(col).Has(sym)
			if rowCyc[col] != want || rowBase[col] != want {
				t.Fatalf("sym %d col %d: cycled=%v baseline=%v want %v",
					sym, col, rowCyc[col], rowBase[col], want)
			}
		}
	}
}

// TestFigure4ReadSequence checks the §2.6 optimized read: one PCH + one
// RWL followed by 8 sequential SAE/SEL pulses, ~2× faster than the
// baseline of 8 full SRAM cycles.
func TestFigure4ReadSequence(t *testing.T) {
	a, _ := NewArray(128, 8)
	_, events, tOpt := a.ReadRow('x', true)
	var pch, rwl, sae, sel int
	lastSEL := -1
	for _, e := range events {
		switch e.Signal {
		case "PCH":
			pch++
		case "RWL":
			rwl++
		case "SAE":
			sae++
		case "SEL":
			sel++
			if e.Value != lastSEL+1 {
				t.Errorf("SEL values should increment: got %d after %d", e.Value, lastSEL)
			}
			lastSEL = e.Value
		}
	}
	if pch != 1 || rwl != 1 {
		t.Errorf("optimized read: PCH=%d RWL=%d, want 1 each (parallel precharge)", pch, rwl)
	}
	if sae != 8 || sel != 8 {
		t.Errorf("optimized read: SAE=%d SEL=%d, want 8 each", sae, sel)
	}
	_, eventsB, tBase := a.ReadRow('x', false)
	pchB := 0
	for _, e := range eventsB {
		if e.Signal == "PCH" {
			pchB++
		}
	}
	if pchB != 8 {
		t.Errorf("baseline read: PCH=%d, want 8 (one per access)", pchB)
	}
	if tBase != 8*arch.SRAMCyclePS {
		t.Errorf("baseline latency = %v, want %v", tBase, 8*arch.SRAMCyclePS)
	}
	if ratio := tBase / tOpt; ratio < 2 {
		t.Errorf("SA cycling speedup = %.2fx, paper: 2-3x", ratio)
	}
}

// TestPartitionMatchLatencyMatchesArchModel: the bit-level model's
// state-match latency equals the arch timing model's for both designs and
// both read modes (Table 3 / Table 4).
func TestPartitionMatchLatencyMatchesArchModel(t *testing.T) {
	for _, kind := range []arch.DesignKind{arch.PerfOpt, arch.SpaceOpt} {
		p := NewPartitionArrays(kind)
		d := arch.NewDesign(kind)
		_, tOpt := p.MatchVector('a', true)
		want := d.StateMatchPS(arch.TimingOptions{})
		if math.Abs(tOpt-want) > 1.5 {
			t.Errorf("%v: bit-level match latency %.0fps, arch model %.0fps", kind, tOpt, want)
		}
		_, tBase := p.MatchVector('a', false)
		wantBase := d.StateMatchPS(arch.TimingOptions{NoSACycling: true})
		if math.Abs(tBase-wantBase) > 1.5 {
			t.Errorf("%v: baseline latency %.0fps, arch model %.0fps", kind, tBase, wantBase)
		}
	}
}

func TestPartitionMatchVector(t *testing.T) {
	p := NewPartitionArrays(arch.SpaceOpt)
	r := rand.New(rand.NewSource(7))
	classes := make([]bitvec.Class, arch.PartitionSTEs)
	for slot := range classes {
		var c bitvec.Class
		for k := 0; k < 1+r.Intn(8); k++ {
			c.Add(byte(r.Intn(256)))
		}
		classes[slot] = c
		if err := p.WriteSTE(slot, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WriteSTE(256, bitvec.Class{}); err == nil {
		t.Error("slot 256 should be rejected")
	}
	for trial := 0; trial < 60; trial++ {
		sym := byte(r.Intn(256))
		v, _ := p.MatchVector(sym, true)
		for slot := 0; slot < arch.PartitionSTEs; slot++ {
			if v.Get(slot) != classes[slot].Has(sym) {
				t.Fatalf("sym %d slot %d: match bit %v, want %v",
					sym, slot, v.Get(slot), classes[slot].Has(sym))
			}
		}
	}
}

func BenchmarkMatchVector(b *testing.B) {
	p := NewPartitionArrays(arch.PerfOpt)
	r := rand.New(rand.NewSource(1))
	for slot := 0; slot < arch.PartitionSTEs; slot++ {
		var c bitvec.Class
		for k := 0; k < 4; k++ {
			c.Add(byte(r.Intn(256)))
		}
		p.WriteSTE(slot, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MatchVector(byte(i), true)
	}
}

func TestRepairableArrayRemapsDeadColumns(t *testing.T) {
	r, err := NewRepairableArray(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]bitvec.Class, 128)
	rng := rand.New(rand.NewSource(3))
	// Mark two dead columns BEFORE configuration (repair happens at
	// config time), then load and verify reads.
	if err := r.MarkDeadColumn(7); err != nil {
		t.Fatal(err)
	}
	if err := r.MarkDeadColumn(100); err != nil {
		t.Fatal(err)
	}
	if err := r.MarkDeadColumn(5); err == nil {
		t.Error("third dead column should exceed the 2 spares")
	}
	for col := range classes {
		var c bitvec.Class
		for k := 0; k < 1+rng.Intn(6); k++ {
			c.Add(byte(rng.Intn(256)))
		}
		classes[col] = c
		if err := r.WriteColumn(col, c); err != nil {
			t.Fatal(err)
		}
	}
	for col, want := range classes {
		if got := r.ReadColumn(col); got != want {
			t.Fatalf("column %d (remapped) read wrong", col)
		}
	}
	// Row reads present logical columns in logical order.
	for trial := 0; trial < 30; trial++ {
		sym := byte(rng.Intn(256))
		row, _ := r.ReadRow(sym, true)
		if len(row) != 128 {
			t.Fatalf("row length %d", len(row))
		}
		for col := 0; col < 128; col++ {
			if row[col] != classes[col].Has(sym) {
				t.Fatalf("sym %d col %d wrong through remap", sym, col)
			}
		}
	}
	// Row spare budget.
	for i := 0; i < RedundantRows; i++ {
		if err := r.MarkDeadRow(byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.MarkDeadRow(99); err == nil {
		t.Error("fifth dead row should exceed the 4 spares")
	}
	if err := r.MarkDeadColumn(-1); err == nil {
		t.Error("negative column should error")
	}
	if err := r.WriteColumn(128, bitvec.Class{}); err == nil {
		t.Error("out-of-range logical column should error")
	}
}
