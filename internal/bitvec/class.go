// Package bitvec provides the fixed 256-bit symbol-class sets that label
// homogeneous-NFA states (one bit per 8-bit input symbol) and the
// variable-length bit vectors used for match/active state vectors.
//
// A Class mirrors an STE column in the Cache Automaton: the column stores
// the one-hot-per-row encoding of the symbols the state matches, so reading
// the row addressed by the current input symbol yields one match bit per
// STE (paper §2.2).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Class is a set over the 256 possible input symbols, i.e. the symbol class
// of one STE. The zero value is the empty class.
type Class [4]uint64

// ClassRange returns the class containing all symbols in [lo, hi].
func ClassRange(lo, hi byte) Class {
	var c Class
	c.AddRange(lo, hi)
	return c
}

// ClassOf returns the class containing exactly the given symbols.
func ClassOf(syms ...byte) Class {
	var c Class
	for _, s := range syms {
		c.Add(s)
	}
	return c
}

// AllSymbols is the class matching every input symbol (the "*" STE).
func AllSymbols() Class {
	return Class{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// Add inserts symbol s into the class.
func (c *Class) Add(s byte) { c[s>>6] |= 1 << (s & 63) }

// Remove deletes symbol s from the class.
func (c *Class) Remove(s byte) { c[s>>6] &^= 1 << (s & 63) }

// AddRange inserts all symbols in [lo, hi]; it is a no-op if lo > hi.
func (c *Class) AddRange(lo, hi byte) {
	for s := int(lo); s <= int(hi); s++ {
		c.Add(byte(s))
	}
}

// Has reports whether symbol s is in the class.
func (c Class) Has(s byte) bool { return c[s>>6]&(1<<(s&63)) != 0 }

// IsEmpty reports whether the class contains no symbols.
func (c Class) IsEmpty() bool { return c == Class{} }

// Count returns the number of symbols in the class.
func (c Class) Count() int {
	return bits.OnesCount64(c[0]) + bits.OnesCount64(c[1]) +
		bits.OnesCount64(c[2]) + bits.OnesCount64(c[3])
}

// Union returns c ∪ o.
func (c Class) Union(o Class) Class {
	return Class{c[0] | o[0], c[1] | o[1], c[2] | o[2], c[3] | o[3]}
}

// Intersect returns c ∩ o.
func (c Class) Intersect(o Class) Class {
	return Class{c[0] & o[0], c[1] & o[1], c[2] & o[2], c[3] & o[3]}
}

// Complement returns the class of all symbols not in c.
func (c Class) Complement() Class {
	return Class{^c[0], ^c[1], ^c[2], ^c[3]}
}

// Minus returns c \ o.
func (c Class) Minus(o Class) Class {
	return Class{c[0] &^ o[0], c[1] &^ o[1], c[2] &^ o[2], c[3] &^ o[3]}
}

// Overlaps reports whether c ∩ o is non-empty.
func (c Class) Overlaps(o Class) bool {
	return c[0]&o[0] != 0 || c[1]&o[1] != 0 || c[2]&o[2] != 0 || c[3]&o[3] != 0
}

// Symbols returns the members of the class in ascending order.
func (c Class) Symbols() []byte {
	out := make([]byte, 0, c.Count())
	for w := 0; w < 4; w++ {
		word := c[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, byte(w<<6|b))
			word &= word - 1
		}
	}
	return out
}

// Ranges returns the class as a minimal list of inclusive [lo, hi] runs.
func (c Class) Ranges() [][2]byte {
	var runs [][2]byte
	inRun := false
	var lo byte
	for s := 0; s < 256; s++ {
		if c.Has(byte(s)) {
			if !inRun {
				lo, inRun = byte(s), true
			}
		} else if inRun {
			runs = append(runs, [2]byte{lo, byte(s - 1)})
			inRun = false
		}
	}
	if inRun {
		runs = append(runs, [2]byte{lo, 255})
	}
	return runs
}

// String renders the class in bracket-expression form, e.g. "[a-z0-9]",
// "[\x00-\xff]" or "[]". Printable ASCII renders literally; everything else
// as \xNN escapes.
func (c Class) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for _, r := range c.Ranges() {
		writeClassSym(&b, r[0])
		switch {
		case r[1] == r[0]:
		case r[1] == r[0]+1:
			writeClassSym(&b, r[1])
		default:
			b.WriteByte('-')
			writeClassSym(&b, r[1])
		}
	}
	b.WriteByte(']')
	return b.String()
}

func writeClassSym(b *strings.Builder, s byte) {
	switch {
	case s == '\\' || s == ']' || s == '-' || s == '^' || s == '[':
		b.WriteByte('\\')
		b.WriteByte(s)
	case s >= 0x20 && s < 0x7f:
		b.WriteByte(s)
	default:
		fmt.Fprintf(b, "\\x%02x", s)
	}
}
