package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(300)
	if v.Len() != 300 {
		t.Fatalf("Len = %d, want 300", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector should be empty")
	}
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(299)
	if got := v.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 299} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Get(1) || v.Get(128) {
		t.Error("unexpected set bits")
	}
	v.Clear(63)
	if v.Get(63) {
		t.Error("bit 63 should be cleared")
	}
	v.Reset()
	if v.Any() || v.Count() != 0 {
		t.Error("Reset should clear all bits")
	}
}

func TestVectorZeroLength(t *testing.T) {
	v := NewVector(0)
	if v.Any() || v.Count() != 0 || v.Len() != 0 {
		t.Error("zero-length vector misbehaves")
	}
	if v.NextSet(0) != -1 {
		t.Error("NextSet on empty vector should be -1")
	}
}

func TestVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVector(-1) should panic")
		}
	}()
	NewVector(-1)
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths should panic")
		}
	}()
	a, b := NewVector(10), NewVector(11)
	a.AndWith(b)
}

func TestVectorBinaryOps(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(512)
		a, b := randomVector(r, n), randomVector(r, n)
		and, or := NewVector(n), NewVector(n)
		and.And(a, b)
		or.Or(a, b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (a.Get(i) && b.Get(i)) {
				t.Fatalf("And bit %d wrong", i)
			}
			if or.Get(i) != (a.Get(i) || b.Get(i)) {
				t.Fatalf("Or bit %d wrong", i)
			}
		}
		// In-place variants match.
		a2 := a.Clone()
		a2.AndWith(b)
		if !a2.Equal(and) {
			t.Fatal("AndWith disagrees with And")
		}
		a3 := a.Clone()
		a3.OrWith(b)
		if !a3.Equal(or) {
			t.Fatal("OrWith disagrees with Or")
		}
		if a.Intersects(b) != and.Any() {
			t.Fatal("Intersects disagrees with And().Any()")
		}
	}
}

func TestVectorForEachAndNextSet(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		v := randomVector(r, n)
		var viaForEach []int
		v.ForEach(func(i int) { viaForEach = append(viaForEach, i) })
		var viaNext []int
		for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		if len(viaForEach) != v.Count() || len(viaNext) != v.Count() {
			t.Fatalf("iteration count mismatch: %d %d vs %d",
				len(viaForEach), len(viaNext), v.Count())
		}
		for i := range viaForEach {
			if viaForEach[i] != viaNext[i] {
				t.Fatalf("iteration order mismatch at %d", i)
			}
			if !v.Get(viaForEach[i]) {
				t.Fatalf("iterated bit %d not actually set", viaForEach[i])
			}
		}
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := NewVector(100)
	v.Set(5)
	c := v.Clone()
	c.Set(6)
	if v.Get(6) {
		t.Fatal("Clone must not alias backing storage")
	}
	v.Set(7)
	if c.Get(7) {
		t.Fatal("Clone must not alias backing storage")
	}
}

func TestVectorCopyFrom(t *testing.T) {
	a := NewVector(70)
	a.Set(1)
	b := NewVector(70)
	b.Set(69)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom should make vectors equal")
	}
}

func TestQuickVectorDeMorgan(t *testing.T) {
	// (a|b) has count >= max(count(a), count(b)); (a&b) <= min.
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randomVector(r, n), randomVector(r, n)
		or, and := NewVector(n), NewVector(n)
		or.Or(a, b)
		and.And(a, b)
		return or.Count()+and.Count() == a.Count()+b.Count() &&
			or.Count() >= a.Count() && and.Count() <= b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomVector(r *rand.Rand, n int) *Vector {
	v := NewVector(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			v.Set(i)
		}
	}
	return v
}

func BenchmarkVectorAnd256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomVector(r, 256), randomVector(r, 256)
	dst := NewVector(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.And(x, y)
	}
}

func BenchmarkVectorForEach256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomVector(r, 256)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(j int) { sink += j })
	}
	_ = sink
}
