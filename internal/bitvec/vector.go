package bitvec

import (
	"math/bits"
)

// Vector is a variable-length bit vector backed by 64-bit words. It backs
// the match vector and active-state vector of each partition (§2.2): one
// bit per STE slot. Vectors taking part in binary operations must have the
// same length.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// NewVector returns an all-zero vector of n bits.
func NewVector(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative vector length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) { v.words[i>>6] |= 1 << (i & 63) }

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) { v.words[i>>6] &^= 1 << (i & 63) }

// Get reports whether bit i is 1.
func (v *Vector) Get(i int) bool { return v.words[i>>6]&(1<<(i&63)) != 0 }

// Reset zeroes every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And stores a ∩ b into v. All three must have equal length.
func (v *Vector) And(a, b *Vector) {
	v.check(a)
	v.check(b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or stores a ∪ b into v. All three must have equal length.
func (v *Vector) Or(a, b *Vector) {
	v.check(a)
	v.check(b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// OrWith ORs o into v in place.
func (v *Vector) OrWith(o *Vector) {
	v.check(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// AndWith ANDs o into v in place.
func (v *Vector) AndWith(o *Vector) {
	v.check(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Intersects reports whether v ∩ o is non-empty.
func (v *Vector) Intersects(o *Vector) bool {
	v.check(o)
	for i, w := range v.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// CopyFrom overwrites v with o's bits.
func (v *Vector) CopyFrom(o *Vector) {
	v.check(o)
	copy(v.words, o.words)
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and o have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit, in ascending order.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (v *Vector) NextSet(i int) int {
	if i >= v.n {
		return -1
	}
	wi := i >> 6
	w := v.words[wi] >> (i & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// Words exposes the backing words (little-endian bit order). The final word
// may contain junk above bit Len()%64 only if callers wrote it directly;
// Vector's own methods never set bits beyond Len().
func (v *Vector) Words() []uint64 { return v.words }

func (v *Vector) check(o *Vector) {
	if v.n != o.n {
		panic("bitvec: vector length mismatch")
	}
}
