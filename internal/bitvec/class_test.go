package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassAddHasRemove(t *testing.T) {
	var c Class
	if !c.IsEmpty() {
		t.Fatal("zero class should be empty")
	}
	c.Add('a')
	c.Add(0)
	c.Add(255)
	for _, s := range []byte{'a', 0, 255} {
		if !c.Has(s) {
			t.Errorf("class should contain %d", s)
		}
	}
	if c.Has('b') {
		t.Error("class should not contain 'b'")
	}
	if got := c.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	c.Remove('a')
	if c.Has('a') {
		t.Error("'a' should have been removed")
	}
	if got := c.Count(); got != 2 {
		t.Errorf("Count after remove = %d, want 2", got)
	}
}

func TestClassRange(t *testing.T) {
	c := ClassRange('a', 'z')
	if got := c.Count(); got != 26 {
		t.Fatalf("Count = %d, want 26", got)
	}
	for s := 0; s < 256; s++ {
		want := s >= 'a' && s <= 'z'
		if c.Has(byte(s)) != want {
			t.Errorf("Has(%d) = %v, want %v", s, !want, want)
		}
	}
	// Degenerate single-symbol range.
	one := ClassRange('x', 'x')
	if one.Count() != 1 || !one.Has('x') {
		t.Errorf("single range wrong: %v", one)
	}
	// Full range.
	if AllSymbols().Count() != 256 {
		t.Error("AllSymbols should have 256 members")
	}
}

func TestClassOf(t *testing.T) {
	c := ClassOf('x', 'y', 'x')
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (duplicates collapse)", c.Count())
	}
}

func TestClassSetAlgebraProperties(t *testing.T) {
	gen := func(r *rand.Rand) Class { return randomClass(r) }
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a, b := gen(r), gen(r)
		if got := a.Union(b); got != b.Union(a) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if got := a.Intersect(b); got != b.Intersect(a) {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		// De Morgan.
		if a.Union(b).Complement() != a.Complement().Intersect(b.Complement()) {
			t.Fatalf("De Morgan failed: %v %v", a, b)
		}
		// Minus definition.
		if a.Minus(b) != a.Intersect(b.Complement()) {
			t.Fatalf("minus mismatch: %v %v", a, b)
		}
		// Overlaps consistent with Intersect.
		if a.Overlaps(b) != !a.Intersect(b).IsEmpty() {
			t.Fatalf("overlaps mismatch: %v %v", a, b)
		}
		// Count via inclusion-exclusion.
		if a.Union(b).Count()+a.Intersect(b).Count() != a.Count()+b.Count() {
			t.Fatalf("inclusion-exclusion failed: %v %v", a, b)
		}
	}
}

func TestClassSymbolsAndRangesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c := randomClass(r)
		// Rebuild from Symbols.
		var fromSyms Class
		for _, s := range c.Symbols() {
			fromSyms.Add(s)
		}
		if fromSyms != c {
			t.Fatalf("Symbols round trip failed for %v", c)
		}
		// Rebuild from Ranges.
		var fromRanges Class
		for _, rr := range c.Ranges() {
			fromRanges.AddRange(rr[0], rr[1])
			if rr[0] > rr[1] {
				t.Fatalf("invalid range %v", rr)
			}
		}
		if fromRanges != c {
			t.Fatalf("Ranges round trip failed for %v", c)
		}
	}
}

func TestClassRangesMinimal(t *testing.T) {
	c := ClassOf('a', 'b', 'c', 'x', 'z')
	got := c.Ranges()
	want := [][2]byte{{'a', 'c'}, {'x', 'x'}, {'z', 'z'}}
	if len(got) != len(want) {
		t.Fatalf("Ranges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranges[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClassStringEdgeCases(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{Class{}, "[]"},
		{ClassOf('a'), "[a]"},
		{ClassRange('a', 'c'), "[a-c]"},
		{ClassOf('a', 'b'), "[ab]"},
		{ClassOf(']'), `[\]]`},
		{ClassOf('-'), `[\-]`},
		{ClassOf(0), `[\x00]`},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String(%v ranges) = %q, want %q", tc.c.Ranges(), got, tc.want)
		}
	}
}

func TestQuickComplementInvolution(t *testing.T) {
	f := func(w0, w1, w2, w3 uint64) bool {
		c := Class{w0, w1, w2, w3}
		return c.Complement().Complement() == c &&
			c.Union(c.Complement()) == AllSymbols() &&
			c.Intersect(c.Complement()).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomClass(r *rand.Rand) Class {
	var c Class
	switch r.Intn(4) {
	case 0: // sparse
		for i, n := 0, r.Intn(8); i < n; i++ {
			c.Add(byte(r.Intn(256)))
		}
	case 1: // range
		lo := byte(r.Intn(256))
		hi := byte(min(255, int(lo)+r.Intn(64)))
		c.AddRange(lo, hi)
	case 2: // dense random words
		c = Class{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	case 3: // complement of sparse
		for i, n := 0, r.Intn(8); i < n; i++ {
			c.Add(byte(r.Intn(256)))
		}
		c = c.Complement()
	}
	return c
}
