package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// wordWalk collects the set-bit indexes of v the way the machine's hot
// loop does: a TrailingZeros64 walk over the raw words, no closures.
func wordWalk(v *Vector) []int {
	var out []int
	for wi, w := range v.Words() {
		for ; w != 0; w &= w - 1 {
			out = append(out, wi<<6+bits.TrailingZeros64(w))
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickWordWalkAgreesWithForEach asserts the word-level iteration the
// simulator uses is equivalent to the closure-based ForEach and the
// NextSet scan on random vectors.
func TestQuickWordWalkAgreesWithForEach(t *testing.T) {
	f := func(lenSeed uint16, bitsSeed int64) bool {
		n := int(lenSeed)%600 + 1
		v := NewVector(n)
		rng := rand.New(rand.NewSource(bitsSeed))
		for i := 0; i < n/3; i++ {
			v.Set(rng.Intn(n))
		}
		walked := wordWalk(v)
		var forEached []int
		v.ForEach(func(i int) { forEached = append(forEached, i) })
		var nexted []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			nexted = append(nexted, i)
		}
		return equalInts(walked, forEached) && equalInts(walked, nexted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzWordWalk drives the same equivalence from fuzzed word content,
// including boundary patterns a random generator rarely hits (all-ones
// words, bits at word seams).
func FuzzWordWalk(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)*8 + 1
		v := NewVector(n)
		for i := 0; i < len(data)*8; i++ {
			if data[i/8]&(1<<(i%8)) != 0 {
				v.Set(i)
			}
		}
		walked := wordWalk(v)
		var forEached []int
		v.ForEach(func(i int) { forEached = append(forEached, i) })
		if !equalInts(walked, forEached) {
			t.Fatalf("word walk %v != ForEach %v", walked, forEached)
		}
		count := 0
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			if count >= len(walked) || walked[count] != i {
				t.Fatalf("NextSet sequence diverges at %d", i)
			}
			count++
		}
		if count != len(walked) || count != v.Count() {
			t.Fatalf("counts disagree: walk %d, NextSet %d, Count %d", len(walked), count, v.Count())
		}
	})
}
