package cacheautomaton

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"cacheautomaton/internal/difftest"
)

// TestSaveLoadRoundTripProperty: for random pattern sets and inputs,
// Load(Save(a)) is indistinguishable from the freshly compiled automaton
// on every execution surface — Run, RunParallel, Stream, and RunBatch all
// serve exactly the Go-regexp oracle's report set — and Save is
// deterministic (the loaded automaton re-encodes to the same bytes),
// which is what makes the content-addressed compile cache stable.
func TestSaveLoadRoundTripProperty(t *testing.T) {
	prop := func(seed int64, rawLen uint16) bool {
		g := difftest.New(seed)
		patterns := g.Patterns(5)
		input := g.Input(int(rawLen)%300 + 8)

		fresh, err := CompileRegex(patterns, Options{Seed: seed})
		if err != nil {
			// The generator stays in the shared subset; a rejected set is a
			// bug, not a skip.
			t.Fatalf("compile %q: %v", patterns, err)
		}
		var blob bytes.Buffer
		if err := fresh.Save(&blob); err != nil {
			t.Fatalf("save: %v", err)
		}
		loaded, err := Load(bytes.NewReader(blob.Bytes()), Options{})
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if loaded.States() != fresh.States() || loaded.Partitions() != fresh.Partitions() {
			t.Logf("geometry drift: %d/%d states, %d/%d partitions",
				loaded.States(), fresh.States(), loaded.Partitions(), fresh.Partitions())
			return false
		}
		var reblob bytes.Buffer
		if err := loaded.Save(&reblob); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		if !bytes.Equal(blob.Bytes(), reblob.Bytes()) {
			t.Logf("Save(Load(Save(a))) not bit-identical (%d vs %d bytes)", blob.Len(), reblob.Len())
			return false
		}

		oracle, err := difftest.NewOracle(patterns)
		if err != nil {
			t.Fatalf("oracle %q: %v", patterns, err)
		}
		want := oracle.Reports(input)

		check := func(surface string, matches []Match, err error) bool {
			if err != nil {
				t.Logf("%s: %v", surface, err)
				return false
			}
			reports := make([]difftest.Report, len(matches))
			for i, m := range matches {
				reports[i] = difftest.Report{Pattern: m.Pattern, Offset: m.Offset}
			}
			if d := difftest.Diff(want, difftest.Set(reports)); d != "" {
				t.Logf("%s diverged from oracle on %q / %q: %s", surface, patterns, input, d)
				return false
			}
			return true
		}

		runM, _, runErr := loaded.Run(input)
		parM, _, parErr := loaded.RunParallel(input, 4)

		s, err := loaded.Stream()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		var streamM []Match
		for _, chunk := range g.Chunks(input) {
			streamM = append(streamM, s.Feed(chunk)...)
		}
		s.Close()

		l, err := loaded.Lease()
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		items, batchErr := l.RunBatch(context.Background(), []string{string(input)})
		l.Release()
		var batchM []Match
		if batchErr == nil {
			if items[0].Err != nil {
				batchErr = items[0].Err
			} else {
				batchM = items[0].Matches
			}
		}

		return check("Run", runM, runErr) &&
			check("RunParallel", parM, parErr) &&
			check("Stream", streamM, nil) &&
			check("RunBatch", batchM, batchErr)
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
