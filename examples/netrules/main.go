// netrules: intrusion-detection-style scanning — the paper's motivating
// network-security workload (§1). Builds a few hundred Snort-like content
// rules, streams synthetic traffic with planted attacks through both Cache
// Automaton designs, and compares their footprint/energy trade-off.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ca "cacheautomaton"
)

func main() {
	r := rand.New(rand.NewSource(7))

	// A rule set in the style of Snort content signatures.
	var rules []string
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			rules = append(rules, fmt.Sprintf("/cgi-bin/exploit%03d", i))
		case 1:
			rules = append(rules, fmt.Sprintf("x-malware-%03d: [0-9a-f]{8}", i))
		default:
			rules = append(rules, fmt.Sprintf("shell%03d.*payload", i))
		}
	}

	// Synthetic traffic with two planted attacks.
	traffic := make([]byte, 64*1024)
	for i := range traffic {
		traffic[i] = byte(' ' + r.Intn(95))
	}
	copy(traffic[10000:], "/cgi-bin/exploit042")
	copy(traffic[50000:], "shell017 carries a payload")

	for _, design := range []ca.Design{ca.Performance, ca.Space} {
		a, err := ca.CompileRegex(rules, ca.Options{Design: design, CaseInsensitive: true})
		if err != nil {
			log.Fatal(err)
		}
		matches, stats, err := a.Run(traffic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d states, %d partitions, %.3f MB cache, %.1f GHz\n",
			design, a.States(), a.Partitions(), a.CacheUsageMB(), a.FrequencyGHz())
		fmt.Printf("   scanned %d KB in %.1f µs (modeled), %.1f pJ/symbol, %.2f W\n",
			len(traffic)/1024, stats.ModeledSeconds*1e6, stats.EnergyPJPerSymbol, stats.AvgPowerW)
		for _, m := range matches {
			fmt.Printf("   ALERT rule %d at offset %d\n", m.Pattern, m.Offset)
		}
	}
}
