// fuzzymatch: approximate string search with Levenshtein automata — the
// edit-distance workload of the paper's Table 1. Finds dictionary words in
// noisy text even when they are misspelled by up to 2 edits.
package main

import (
	"fmt"
	"log"

	ca "cacheautomaton"
)

func main() {
	words := []string{"automaton", "processor", "cache"}
	a, err := ca.CompileFuzzy(words, 2, ca.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Misspellings: "automatan" (1 sub), "procesor" (1 del),
	// "cachee" (1 ins), "koshar" (3 edits — should NOT match).
	text := []byte("the automatan inside a procesor has a cachee but not a koshar")
	matches, stats, err := a.Run(text)
	if err != nil {
		log.Fatal(err)
	}
	// A fuzzy automaton reports once per matching end position; collapse
	// consecutive reports of the same word for display.
	lastEnd := map[int]int64{0: -10, 1: -10, 2: -10}
	for _, m := range matches {
		if m.Offset-lastEnd[m.Pattern] > 3 {
			fmt.Printf("≈%q ends near offset %d\n", words[m.Pattern], m.Offset)
		}
		lastEnd[m.Pattern] = m.Offset
	}
	fmt.Printf("\n%d Levenshtein STEs in %d partitions; %d total reports on %d symbols\n",
		a.States(), a.Partitions(), stats.Matches, stats.Cycles)
}
