// flowscan: per-flow scanning with suspend/resume — the §2.9 system
// integration story. Network traffic arrives as interleaved packets from
// many flows; matches must not cross flow boundaries, so each flow gets
// its own Stream whose architectural state (active-state vectors + symbol
// counter) is suspended between packets exactly as the paper describes
// ("recording the number of input symbols processed and the active state
// vector to memory").
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	ca "cacheautomaton"
)

type packet struct {
	flow    int
	payload []byte
}

func main() {
	rules := `alert tcp any any (msg:"split exploit"; content:"EXPLOIT-MARKER"; sid:2001;)
alert tcp any any (msg:"beacon"; pcre:"/beacon[0-9]{4}ping/"; sid:2002;)`
	a, err := ca.CompileSnortRules(rules, ca.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Three flows; the attack string is SPLIT across two packets of flow 1
	// with flow 2's traffic interleaved between them — a per-flow scanner
	// must still catch it, and must NOT match when the halves belong to
	// different flows.
	r := rand.New(rand.NewSource(9))
	noise := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return b
	}
	packets := []packet{
		{1, append(noise(20), []byte("EXPLOIT-")...)}, // first half
		{2, []byte("MARKER and beacon12")},            // wrong flow for both halves
		{3, noise(30)},
		{1, append([]byte("MARKER"), noise(10)...)}, // completes flow 1's match
		{2, []byte("34ping tail")},                  // completes flow 2's pcre
	}

	// One suspended state per flow, as the OS would keep per-connection.
	suspended := map[int][]byte{}
	alerts := 0
	for i, pkt := range packets {
		var s *ca.Stream
		if blob, ok := suspended[pkt.flow]; ok {
			s, err = a.ResumeStream(bytes.NewReader(blob))
		} else {
			s, err = a.Stream()
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range s.Feed(pkt.payload) {
			alerts++
			fmt.Printf("packet %d (flow %d): ALERT sid %d at flow offset %d\n",
				i, pkt.flow, m.Pattern, m.Offset)
		}
		var buf bytes.Buffer
		if err := s.Suspend(&buf); err != nil {
			log.Fatal(err)
		}
		suspended[pkt.flow] = buf.Bytes()
	}
	fmt.Printf("\n%d alerts from %d packets across %d flows\n", alerts, len(packets), len(suspended))
	fmt.Printf("per-flow state blob: %d bytes (%d partitions of active-state vector)\n",
		len(suspended[1]), a.Partitions())
	if alerts != 2 {
		log.Fatal("expected exactly the two cross-packet matches")
	}
}
