// Quickstart: compile a small rule set, scan a string, inspect the
// modeled hardware characteristics.
package main

import (
	"fmt"
	"log"

	ca "cacheautomaton"
)

func main() {
	rules := []string{
		"cat",         // rule 0: plain literal
		"dog.*food",   // rule 1: content with a gap
		"bir[dst]{2}", // rule 2: class + counted repeat
	}
	a, err := ca.CompileRegex(rules, ca.Options{})
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("the cat watched a dog eat bird food; then the dog found cat food")
	matches, stats, err := a.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("rule %d matched, ending at offset %d\n", m.Pattern, m.Offset)
	}
	fmt.Printf("\nmapped %d states into %d partition(s) (%.3f MB of last-level cache)\n",
		a.States(), a.Partitions(), a.CacheUsageMB())
	fmt.Printf("operating at %.1f GHz → %.0f Gb/s line rate\n", a.FrequencyGHz(), a.ThroughputGbps())
	fmt.Printf("this %d-symbol scan: %.1f ns on hardware, %.1f pJ/symbol\n",
		stats.Cycles, stats.ModeledSeconds*1e9, stats.EnergyPJPerSymbol)
}
