// dnamotif: motif search in genomic sequences — the paper's bioinformatics
// workload (§1, Protomata/Weeder-style motif discovery). Scans a synthetic
// genome for degenerate motifs written in IUPAC-ish class notation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ca "cacheautomaton"
)

func main() {
	// Degenerate DNA motifs: classes encode ambiguity codes
	// (e.g. [AG] = purine "R", [CT] = pyrimidine "Y").
	motifs := []string{
		"TATA[AT]A[AT]",         // TATA box
		"GG[CT]CAATCT",          // CAAT box
		"[AG]CCGCC[AG]",         // GC-rich element
		"CACGTG",                // E-box
		"TT[AG]AC[AT]{2}[AG]TG", // gapped composite site
	}
	a, err := ca.CompileRegex(motifs, ca.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic genome with planted promoter elements.
	r := rand.New(rand.NewSource(42))
	genome := make([]byte, 100_000)
	for i := range genome {
		genome[i] = "ACGT"[r.Intn(4)]
	}
	copy(genome[12345:], "TATAAAAA")
	copy(genome[50000:], "CACGTG")
	copy(genome[77777:], "GGTCAATCT")

	matches, stats, err := a.Run(genome)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"TATA box", "CAAT box", "GC element", "E-box", "composite"}
	for _, m := range matches {
		fmt.Printf("%-10s found ending at position %d\n", names[m.Pattern], m.Offset)
	}
	fmt.Printf("\n%d bp scanned in %.1f µs (modeled) — %.1f Gb/s line rate\n",
		stats.Cycles, stats.ModeledSeconds*1e6, a.ThroughputGbps())
	fmt.Printf("avg %.2f active states/cycle, %.1f pJ/symbol\n",
		stats.AvgActiveStates, stats.EnergyPJPerSymbol)
}
