package cacheautomaton

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRunSafe is the regression test for the Automaton
// concurrency contract. Before the machine-lease API, every Run call
// Reset() and ran one shared *machine.Machine, so two goroutines calling
// Run on the same Automaton raced on the enabled vectors and the result
// accumulator (go test -race flagged it, and match sets were garbage).
// Run now leases a private machine per call: concurrent callers must all
// see exactly the sequential reference matches, under -race.
func TestConcurrentRunSafe(t *testing.T) {
	a, err := CompileRegex([]string{"cat", "dog.*food", "x[0-9]{2}y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("the cat ate dog brand food while x42y watched the cat")
	want, wantStats, err := a.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no matches")
	}

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, gotStats, err := a.Run(input)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d iter %d: %d matches, want %d", g, i, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("goroutine %d iter %d: match %d = %+v, want %+v", g, i, j, got[j], want[j])
						return
					}
				}
				if *gotStats != *wantStats {
					errs <- fmt.Errorf("goroutine %d iter %d: stats %+v, want %+v", g, i, *gotStats, *wantStats)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixedWorkloads drives Run, RunParallel, Count and Streams
// on one Automaton from many goroutines at once — the exact shape the
// serving layer produces — and checks every path still reports the
// sequential reference match count.
func TestConcurrentMixedWorkloads(t *testing.T) {
	a, err := CompileRegex([]string{"needle[0-9]", "stack"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("hay needle7 stack "), 40)
	want, _, err := a.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	wantN := len(want)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	check := func(kind string, got int) {
		if got != wantN {
			errs <- fmt.Errorf("%s: %d matches, want %d", kind, got, wantN)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ms, _, err := a.Run(input)
				if err != nil {
					errs <- err
					return
				}
				check("Run", len(ms))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ms, _, err := a.RunParallel(input, 4)
				if err != nil {
					errs <- err
					return
				}
				check("RunParallel", len(ms))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				st, err := a.Count(input)
				if err != nil {
					errs <- err
					return
				}
				check("Count", int(st.Matches))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s, err := a.Stream()
				if err != nil {
					errs <- err
					return
				}
				total := 0
				for off := 0; off < len(input); off += 37 {
					end := off + 37
					if end > len(input) {
						end = len(input)
					}
					total += len(s.Feed(input[off:end]))
				}
				s.Close()
				check("Stream", total)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStreamClose checks the stream lease lifecycle: closed streams are
// inert, Close is idempotent, and the machine is recycled through the
// automaton's pool.
func TestStreamClose(t *testing.T) {
	a, err := CompileRegex([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Feed([]byte("abab")); len(got) != 2 {
		t.Fatalf("feed = %v", got)
	}
	s.Close()
	s.Close() // idempotent
	if got := s.Feed([]byte("ab")); got != nil {
		t.Errorf("closed stream fed matches: %v", got)
	}
	if s.Pos() != 0 {
		t.Errorf("closed stream Pos = %d", s.Pos())
	}
	if err := s.Suspend(&bytes.Buffer{}); err == nil {
		t.Error("suspend of closed stream should error")
	}
	// A fresh stream after Close starts at offset 0 (the pool Reset it).
	s2, err := a.Stream()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Pos() != 0 {
		t.Errorf("recycled stream Pos = %d", s2.Pos())
	}
	if got := s2.Feed([]byte("xxab")); len(got) != 1 || got[0].Offset != 3 {
		t.Errorf("recycled stream feed = %v", got)
	}
}

// TestLeaseLifecycle checks Lease semantics: exclusive reuse across runs,
// released leases error, Release is idempotent.
func TestLeaseLifecycle(t *testing.T) {
	a, err := CompileRegex([]string{"cat"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ms, st, err := l.Run([]byte("the cat"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || st.Cycles != 7 {
			t.Fatalf("iter %d: ms=%v stats=%+v", i, ms, st)
		}
	}
	l.Release()
	l.Release() // idempotent
	if _, _, err := l.Run([]byte("cat")); err == nil {
		t.Error("released lease should error")
	}
}
