package cacheautomaton_test

import (
	"bytes"
	"fmt"

	ca "cacheautomaton"
)

// The basic flow: compile a rule set, scan a buffer, read the matches.
func ExampleCompileRegex() {
	a, err := ca.CompileRegex([]string{"cat", "dog.*food"}, ca.Options{})
	if err != nil {
		panic(err)
	}
	matches, _, _ := a.Run([]byte("the cat ate dog food"))
	for _, m := range matches {
		fmt.Printf("rule %d at offset %d\n", m.Pattern, m.Offset)
	}
	// Output:
	// rule 0 at offset 6
	// rule 1 at offset 19
}

// The space-optimized design merges shared structure before mapping.
func ExampleOptions_space() {
	rules := []string{"prefix-shared-one", "prefix-shared-two"}
	perf, _ := ca.CompileRegex(rules, ca.Options{Design: ca.Performance})
	space, _ := ca.CompileRegex(rules, ca.Options{Design: ca.Space})
	fmt.Printf("CA_P: %d states at %.1f GHz\n", perf.States(), perf.FrequencyGHz())
	fmt.Printf("CA_S: %d states at %.1f GHz\n", space.States(), space.FrequencyGHz())
	// Output:
	// CA_P: 34 states at 2.0 GHz
	// CA_S: 20 states at 1.2 GHz
}

// Approximate search with Levenshtein automata.
func ExampleCompileFuzzy() {
	a, err := ca.CompileFuzzy([]string{"automaton"}, 1, ca.Options{})
	if err != nil {
		panic(err)
	}
	matches, _, _ := a.Run([]byte("an automatIn appears")) // 1 substitution
	fmt.Println(len(matches) > 0)
	// Output:
	// true
}

// Streaming with suspend/resume: a match can span the suspension point.
func ExampleAutomaton_Stream() {
	a, _ := ca.CompileRegex([]string{"handoff"}, ca.Options{})
	s, _ := a.Stream()
	s.Feed([]byte("...hand"))

	var state bytes.Buffer
	_ = s.Suspend(&state) // e.g. persist per-connection state

	resumed, _ := a.ResumeStream(&state)
	for _, m := range resumed.Feed([]byte("off...")) {
		fmt.Printf("rule %d completed at offset %d\n", m.Pattern, m.Offset)
	}
	// Output:
	// rule 0 completed at offset 9
}
