// Command caregex compiles a regex rule set to an ANML automata network on
// stdout — the front half of the paper's toolchain, usable to feed other
// ANML consumers (e.g. VASim or AP SDK tooling).
//
// Usage:
//
//	caregex -rules rules.txt [-id network-name] [-i] > machine.anml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cacheautomaton/internal/anml"
	"cacheautomaton/internal/regexc"
	"cacheautomaton/internal/telemetry"
)

func main() {
	rules := flag.String("rules", "", "file with one regex per line")
	id := flag.String("id", "cacheautomaton", "automata-network id")
	caseIns := flag.Bool("i", false, "case-insensitive")
	traceCompile := flag.Bool("trace-compile", false, "print the front-end phase breakdown to stderr")
	flag.Parse()
	if *rules == "" {
		fatal(fmt.Errorf("-rules is required"))
	}
	data, err := os.ReadFile(*rules)
	if err != nil {
		fatal(err)
	}
	var pats []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			pats = append(pats, line)
		}
	}
	var tr *telemetry.Trace
	if *traceCompile {
		tr = telemetry.NewTrace("caregex")
	}
	n, err := regexc.CompileSet(pats, regexc.Options{CaseInsensitive: *caseIns, Trace: tr})
	if *traceCompile {
		fmt.Fprint(os.Stderr, tr.Report().String())
	}
	if err != nil {
		fatal(err)
	}
	if err := anml.Write(os.Stdout, n, *id, nil); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caregex:", err)
	os.Exit(1)
}
