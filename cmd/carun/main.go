// Command carun executes a rule set over an input stream on the simulated
// Cache Automaton and prints the matches and modeled hardware statistics.
//
// Usage:
//
//	carun -rules rules.txt -in data.bin [-design perf|space] [-max 20]
//	echo "some text" | carun -rules rules.txt -in -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ca "cacheautomaton"
)

func main() {
	rules := flag.String("rules", "", "file with one regex per line")
	snort := flag.String("snort", "", "Snort-style rule file (content/pcre/sid)")
	clamav := flag.String("clamav", "", "ClamAV-style hex-signature database")
	in := flag.String("in", "-", "input file ('-' for stdin)")
	design := flag.String("design", "perf", "perf (CA_P) or space (CA_S)")
	maxPrint := flag.Int("max", 20, "print at most this many matches")
	caseIns := flag.Bool("i", false, "case-insensitive")
	flag.Parse()
	opts := ca.Options{CaseInsensitive: *caseIns}
	if strings.HasPrefix(*design, "s") {
		opts.Design = ca.Space
	}
	var a *ca.Automaton
	var err error
	switch {
	case *snort != "":
		text, rerr := os.ReadFile(*snort)
		if rerr != nil {
			fatal(rerr)
		}
		a, err = ca.CompileSnortRules(string(text), opts)
	case *clamav != "":
		text, rerr := os.ReadFile(*clamav)
		if rerr != nil {
			fatal(rerr)
		}
		a, _, err = ca.CompileClamAVDatabase(string(text), opts)
	case *rules != "":
		pats, rerr := readLines(*rules)
		if rerr != nil {
			fatal(rerr)
		}
		a, err = ca.CompileRegex(pats, opts)
	default:
		fatal(fmt.Errorf("one of -rules, -snort, -clamav is required"))
	}
	if err != nil {
		fatal(err)
	}
	data, err := readAll(*in)
	if err != nil {
		fatal(err)
	}
	matches, stats, err := a.Run(data)
	if err != nil {
		fatal(err)
	}
	for i, m := range matches {
		if i >= *maxPrint {
			fmt.Printf("... and %d more\n", len(matches)-*maxPrint)
			break
		}
		fmt.Printf("match: rule %d at offset %d\n", m.Pattern, m.Offset)
	}
	fmt.Printf("-- %s: %d states in %d partitions (%.3f MB of LLC)\n",
		opts.Design, a.States(), a.Partitions(), a.CacheUsageMB())
	fmt.Printf("-- %d symbols, %d matches, avg %.1f active states\n",
		stats.Cycles, stats.Matches, stats.AvgActiveStates)
	fmt.Printf("-- modeled: %.2f GHz, %.0f ns runtime, %.1f pJ/symbol, %.2f W\n",
		a.FrequencyGHz(), stats.ModeledSeconds*1e9, stats.EnergyPJPerSymbol, stats.AvgPowerW)
}

func readAll(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func readLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "carun:", err)
	os.Exit(1)
}
