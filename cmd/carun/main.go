// Command carun executes a rule set over an input stream on the simulated
// Cache Automaton and prints the matches and modeled hardware statistics.
//
// Usage:
//
//	carun -rules rules.txt -in data.bin [-design perf|space] [-max 20]
//	carun -rules rules.txt -in data.bin -parallel 0
//	carun -rules rules.txt -in data.bin -trace-compile -metrics-addr :8080
//	echo "some text" | carun -rules rules.txt -in -
//
// With -parallel N, the input is scanned by N replicated machines in
// parallel (N=0 uses all cores) with bit-identical matches and statistics;
// short inputs fall back to the sequential engine.
//
// With -metrics-addr, a telemetry endpoint serves /metrics (Prometheus
// text), /metrics.json, /debug/vars (expvar) and /debug/pprof/ for the
// lifetime of the process. With -trace-compile, the compiler's per-phase
// wall-time breakdown is printed before the results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ca "cacheautomaton"
	"cacheautomaton/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of carun: parses args, compiles, executes, and
// prints; returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("carun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "file with one regex per line")
	snort := fs.String("snort", "", "Snort-style rule file (content/pcre/sid)")
	clamav := fs.String("clamav", "", "ClamAV-style hex-signature database")
	in := fs.String("in", "-", "input file ('-' for stdin)")
	design := fs.String("design", "perf", "perf (CA_P) or space (CA_S)")
	maxPrint := fs.Int("max", 20, "print at most this many matches")
	caseIns := fs.Bool("i", false, "case-insensitive")
	parallel := fs.Int("parallel", 1, "scan with this many replicated machines (0 = all cores)")
	traceCompile := fs.Bool("trace-compile", false, "print the compile-pipeline phase breakdown")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (':0' picks a port)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := ca.Options{CaseInsensitive: *caseIns}
	if strings.HasPrefix(*design, "s") {
		opts.Design = ca.Space
	}
	if *metricsAddr != "" {
		opts.RunObserver = telemetry.NewMachineCollector(nil)
		srv, err := telemetry.Serve(*metricsAddr, nil)
		if err != nil {
			fmt.Fprintln(stderr, "carun:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}

	var a *ca.Automaton
	var err error
	switch {
	case *snort != "":
		text, rerr := os.ReadFile(*snort)
		if rerr != nil {
			fmt.Fprintln(stderr, "carun:", rerr)
			return 1
		}
		a, err = ca.CompileSnortRules(string(text), opts)
	case *clamav != "":
		text, rerr := os.ReadFile(*clamav)
		if rerr != nil {
			fmt.Fprintln(stderr, "carun:", rerr)
			return 1
		}
		a, _, err = ca.CompileClamAVDatabase(string(text), opts)
	case *rules != "":
		pats, rerr := readLines(*rules)
		if rerr != nil {
			fmt.Fprintln(stderr, "carun:", rerr)
			return 1
		}
		a, err = ca.CompileRegex(pats, opts)
	default:
		fmt.Fprintln(stderr, "carun: one of -rules, -snort, -clamav is required")
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "carun:", err)
		return 1
	}
	if *traceCompile {
		fmt.Fprint(stdout, a.CompileReport().String())
	}
	data, err := readAll(*in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "carun:", err)
		return 1
	}
	var matches []ca.Match
	var stats *ca.Stats
	if *parallel == 1 {
		matches, stats, err = a.Run(data)
	} else {
		matches, stats, err = a.RunParallel(data, *parallel)
	}
	if err != nil {
		fmt.Fprintln(stderr, "carun:", err)
		return 1
	}
	for i, m := range matches {
		if i >= *maxPrint {
			fmt.Fprintf(stdout, "... and %d more\n", len(matches)-*maxPrint)
			break
		}
		fmt.Fprintf(stdout, "match: rule %d at offset %d\n", m.Pattern, m.Offset)
	}
	fmt.Fprintf(stdout, "-- %s: %d states in %d partitions (%.3f MB of LLC)\n",
		opts.Design, a.States(), a.Partitions(), a.CacheUsageMB())
	fmt.Fprintf(stdout, "-- %d symbols, %d matches, avg %.1f active states\n",
		stats.Cycles, stats.Matches, stats.AvgActiveStates)
	fmt.Fprintf(stdout, "-- modeled: %.2f GHz, %.0f ns runtime, %.1f pJ/symbol, %.2f W\n",
		a.FrequencyGHz(), stats.ModeledSeconds*1e9, stats.EnergyPJPerSymbol, stats.AvgPowerW)
	return 0
}

func readAll(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

func readLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, nil
}
