package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCapture(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunRegexRules(t *testing.T) {
	rules := writeFile(t, "rules.txt", "cat\ndog.*food\n# a comment\n")
	code, out, errOut := runCapture(t,
		[]string{"-rules", rules, "-in", "-"}, "the cat ate dog brand food")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "match: rule 0") || !strings.Contains(out, "match: rule 1") {
		t.Errorf("missing matches:\n%s", out)
	}
	if !strings.Contains(out, "CA_P:") {
		t.Errorf("missing design summary:\n%s", out)
	}
}

func TestRunDesignSelection(t *testing.T) {
	rules := writeFile(t, "rules.txt", "abc\n")
	code, out, _ := runCapture(t, []string{"-rules", rules, "-design", "space", "-in", "-"}, "abc")
	if code != 0 || !strings.Contains(out, "CA_S:") {
		t.Errorf("space design not selected (exit %d):\n%s", code, out)
	}
}

func TestRunMaxTruncation(t *testing.T) {
	rules := writeFile(t, "rules.txt", "a\n")
	code, out, _ := runCapture(t,
		[]string{"-rules", rules, "-max", "3", "-in", "-"}, strings.Repeat("a", 10))
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if got := strings.Count(out, "match: rule"); got != 3 {
		t.Errorf("printed %d matches, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, "... and 7 more") {
		t.Errorf("missing truncation line:\n%s", out)
	}
}

func TestRunSnortSelection(t *testing.T) {
	snort := writeFile(t, "rules.rules",
		`alert tcp any any -> any any (msg:"t"; content:"virus"; sid:1001;)`)
	code, out, errOut := runCapture(t, []string{"-snort", snort, "-in", "-"}, "a virus here")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "match: rule 1001") {
		t.Errorf("snort sid not reported:\n%s", out)
	}
}

func TestRunClamAVSelection(t *testing.T) {
	db := writeFile(t, "sigs.ndb", "TestSig:6162??64\n")
	code, out, errOut := runCapture(t, []string{"-clamav", db, "-in", "-"}, "xxabcdxx")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "match: rule 0") {
		t.Errorf("clamav signature not reported:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if code, _, errOut := runCapture(t, nil, ""); code != 1 ||
		!strings.Contains(errOut, "one of -rules, -snort, -clamav") {
		t.Errorf("no-source run: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runCapture(t, []string{"-rules", "/does/not/exist"}, ""); code != 1 {
		t.Errorf("missing rules file should exit 1, got %d", code)
	}
	if code, _, _ := runCapture(t, []string{"-bogus-flag"}, ""); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	bad := writeFile(t, "bad.txt", "(unclosed\n")
	if code, _, errOut := runCapture(t, []string{"-rules", bad, "-in", "-"}, "x"); code != 1 ||
		!strings.Contains(errOut, "carun:") {
		t.Errorf("bad pattern: exit %d, stderr %q", code, errOut)
	}
}

func TestRunTraceCompile(t *testing.T) {
	rules := writeFile(t, "rules.txt", "cat\n")
	code, out, _ := runCapture(t, []string{"-rules", rules, "-trace-compile", "-in", "-"}, "cat")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"compile-regex", "regexc.parse", "regexc.glushkov", "machine.build", "ms total"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMetricsEndpoint is the acceptance-criteria path: -metrics-addr :0
// -trace-compile must serve /metrics, /debug/vars and /debug/pprof/ and
// print the phase breakdown.
func TestRunMetricsEndpoint(t *testing.T) {
	rules := writeFile(t, "rules.txt", "cat\n")
	var out, errb bytes.Buffer
	addrCh := make(chan string, 1)
	done := make(chan int, 1)
	// Probe the endpoint while run() still holds it open: readAll blocks
	// on stdin until the probe finishes.
	pr, pw := io.Pipe()
	go func() {
		done <- run([]string{"-rules", rules, "-metrics-addr", "127.0.0.1:0", "-trace-compile", "-in", "-"},
			pr, &syncWriter{buf: &out, addrCh: addrCh}, &errb)
	}()
	addr := <-addrCh
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "# TYPE ca_active_states histogram") {
			t.Errorf("/metrics missing machine metrics:\n%s", body)
		}
	}
	fmt.Fprint(pw, "the cat")
	pw.Close()
	if code := <-done; code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "compile-regex") {
		t.Errorf("missing compile trace:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "match: rule 0") {
		t.Errorf("missing match:\n%s", out.String())
	}
}

var addrRe = regexp.MustCompile(`http://([^\s]+)`)

// syncWriter forwards writes to buf and announces the telemetry address
// once it appears in the output.
type syncWriter struct {
	buf    *bytes.Buffer
	addrCh chan string
	sent   bool
}

func (w *syncWriter) Write(p []byte) (int, error) {
	n, err := w.buf.Write(p)
	if !w.sent {
		if m := addrRe.FindSubmatch(w.buf.Bytes()); m != nil {
			w.sent = true
			w.addrCh <- string(m[1])
		}
	}
	return n, err
}

func TestRunParallelFlag(t *testing.T) {
	rules := writeFile(t, "rules.txt", "needle[0-9]\nx.*yz\n")
	// Large enough that -parallel 0 actually shards (≥ ~8 KB per shard).
	var input strings.Builder
	for i := 0; input.Len() < 100_000; i++ {
		fmt.Fprintf(&input, "padding %d x around yz needle%d ", i, i%10)
	}
	codeSeq, outSeq, errSeq := runCapture(t,
		[]string{"-rules", rules, "-max", "5", "-in", "-"}, input.String())
	if codeSeq != 0 {
		t.Fatalf("sequential exit = %d, stderr = %q", codeSeq, errSeq)
	}
	codePar, outPar, errPar := runCapture(t,
		[]string{"-rules", rules, "-max", "5", "-parallel", "0", "-in", "-"}, input.String())
	if codePar != 0 {
		t.Fatalf("parallel exit = %d, stderr = %q", codePar, errPar)
	}
	if outPar != outSeq {
		t.Errorf("-parallel output differs from sequential:\n%s\nvs\n%s", outPar, outSeq)
	}
}
