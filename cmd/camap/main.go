// Command camap compiles a rule set (regex list or ANML file, or a named
// synthetic benchmark) and reports how the Cache Automaton compiler maps
// it: partitions, ways, cache footprint, switch usage, and budget headroom.
//
// Usage:
//
//	camap -rules rules.txt [-design perf|space] [-seed 1]
//	camap -anml machine.anml -design space
//	camap -bench EntityResolution -scale 0.2 -design space
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/bitstream"
	"cacheautomaton/internal/caformat"
	"cacheautomaton/internal/mapper"
	"cacheautomaton/internal/nfa"
	"cacheautomaton/internal/telemetry"
	"cacheautomaton/internal/workload"

	"cacheautomaton/internal/anml"
	"cacheautomaton/internal/regexc"
)

func main() {
	rules := flag.String("rules", "", "file with one regex per line ('-' for stdin)")
	anmlFile := flag.String("anml", "", "ANML automata-network file")
	bench := flag.String("bench", "", "synthetic benchmark name (see cabench)")
	scale := flag.Float64("scale", 1.0, "benchmark scale (with -bench)")
	design := flag.String("design", "perf", "perf (CA_P) or space (CA_S)")
	seed := flag.Int64("seed", 1, "partitioner seed")
	caseIns := flag.Bool("i", false, "case-insensitive regex")
	imageOut := flag.String("o", "", "write the configuration bitstream image to this file")
	saveOut := flag.String("save", "", "serialize the mapped automaton as a CRC-guarded caformat container to this file")
	loadIn := flag.String("load", "", "load a caformat container written by -save instead of compiling (-rules/-anml/-bench ignored)")
	dotOut := flag.String("dot", "", "write the partition graph (Graphviz DOT) to this file")
	traceCompile := flag.Bool("trace-compile", false, "print the compile-pipeline phase breakdown")
	flag.Parse()

	var (
		pl   *mapper.Placement
		kind arch.DesignKind
	)
	if *loadIn != "" {
		f, err := os.Open(*loadIn)
		if err != nil {
			fatal(err)
		}
		pl, _, err = caformat.Decode(f)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		kind = pl.Design.Kind
		fmt.Printf("loaded:              %s (verified)\n", *loadIn)
	} else {
		n, err := loadNFA(*rules, *anmlFile, *bench, *scale, *seed, *caseIns)
		if err != nil {
			fatal(err)
		}
		kind = arch.PerfOpt
		if strings.HasPrefix(*design, "s") {
			kind = arch.SpaceOpt
		}
		before := n.ComputeStats()
		var tr *telemetry.Trace
		if *traceCompile {
			tr = telemetry.NewTrace("camap/" + kind.String())
		}
		var level mapper.OptimizeLevel
		pl, level, err = mapper.MapOptimized(n, mapper.Config{
			Design:         arch.NewDesign(kind),
			Seed:           *seed,
			AllowChainedG4: kind == arch.SpaceOpt,
			Trace:          tr,
		})
		if *traceCompile {
			fmt.Print(tr.Report().String())
		}
		if err != nil {
			fatal(err)
		}
		if kind == arch.SpaceOpt {
			fmt.Printf("state merging:       %d → %d states (ladder level: %v)\n",
				before.States, pl.NFA.NumStates(), level)
		}
	}
	st := pl.ComputeStats()
	nst := pl.NFA.ComputeStats()
	fmt.Printf("design:              %v\n", kind)
	fmt.Printf("states:              %d\n", nst.States)
	fmt.Printf("edges:               %d\n", nst.Edges)
	fmt.Printf("connected components:%d (largest %d)\n", nst.ConnectedComponents, nst.LargestCC)
	fmt.Printf("partitions:          %d (avg fill %.1f%%)\n", st.Partitions, st.AvgFill*100)
	fmt.Printf("ways / slices:       %d / %d\n", st.WaysUsed, st.SlicesUsed)
	fmt.Printf("cache footprint:     %.3f MB\n", st.UtilizationMB)
	fmt.Printf("edges by switch:     local %d, G1 %d, G4 %d, chained %d\n",
		st.LocalEdges, st.G1Edges, st.G4Edges, st.ChainedEdges)
	fmt.Printf("budget use:          out %d/%d, in %d/%d signals\n",
		st.MaxOutSignals, budget(kind), st.MaxInSignals, budget(kind))
	d := arch.NewDesign(kind)
	fmt.Printf("operating frequency: %.2f GHz (%.1f Gb/s)\n",
		d.OperatingFrequencyGHz(arch.TimingOptions{}), d.ThroughputGbps(arch.TimingOptions{}))
	fmt.Printf("config image:        %d KB, ~%.3f ms to load\n",
		bitstream.ImageSizeBytes(pl)/1024, arch.ConfigurationTimeMS(pl.NumPartitions()))
	fmt.Printf("peak power hint:     %.2f W\n", pl.PeakPowerHintW())
	if *imageOut != "" {
		f, err := os.Create(*imageOut)
		if err != nil {
			fatal(err)
		}
		if err := bitstream.Write(f, pl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *imageOut)
	}
	if *saveOut != "" {
		f, err := os.Create(*saveOut)
		if err != nil {
			fatal(err)
		}
		if err := caformat.Encode(f, pl, nil); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if fi, err := os.Stat(*saveOut); err == nil {
			fmt.Printf("wrote %s (%d KB, caformat v%d)\n", *saveOut, fi.Size()/1024, caformat.Version)
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := pl.WriteDOT(f, "placement"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
}

func budget(kind arch.DesignKind) int {
	d := arch.NewDesign(kind)
	return d.G1SignalsPerPartition + d.G4SignalsPerPartition
}

func loadNFA(rules, anmlFile, bench string, scale float64, seed int64, caseIns bool) (*nfa.NFA, error) {
	switch {
	case bench != "":
		spec := workload.ByName(bench)
		if spec == nil {
			return nil, fmt.Errorf("unknown benchmark %q (have: %s)", bench, strings.Join(workload.Names(), ", "))
		}
		return spec.Build(seed, scale)
	case anmlFile != "":
		f, err := os.Open(anmlFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		net, err := anml.Read(f)
		if err != nil {
			return nil, err
		}
		return net.NFA, nil
	case rules != "":
		pats, err := readLines(rules)
		if err != nil {
			return nil, err
		}
		return regexc.CompileSet(pats, regexc.Options{CaseInsensitive: caseIns})
	default:
		return nil, fmt.Errorf("one of -rules, -anml, -bench is required")
	}
}

func readLines(path string) ([]string, error) {
	var r *bufio.Scanner
	if path == "-" {
		r = bufio.NewScanner(os.Stdin)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = bufio.NewScanner(f)
	}
	r.Buffer(make([]byte, 1<<20), 1<<20)
	var out []string
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, r.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "camap:", err)
	os.Exit(1)
}
