// Command cad is the Cache Automaton match-serving daemon: it loads rule
// sets, compiles them onto the simulated in-cache automaton, and serves
// concurrent matching over HTTP/JSON and an optional line-framed TCP
// protocol.
//
// Usage:
//
//	cad -http :8480
//	cad -http :8480 -rules snort.rules -format snort -ruleset ids
//	cad -http :8480 -tcp :8481 -metrics-addr :8482 -workers 8
//
// The HTTP API (see internal/server) compiles rule sets with
// PUT /rulesets/{name}, scans with POST /match, and streams with
// POST /sessions + /sessions/{id}/feed; /sessions/{id}/suspend serializes
// a session's architectural state for migration to another cad. With
// -metrics-addr, a telemetry endpoint serves /metrics, /metrics.json,
// /debug/vars and /debug/pprof.
//
// Batched serving: -batch-window turns on the request coalescer —
// concurrent small unsharded /match requests against one rule set wait
// up to the window and run through one leased machine as a single
// batched sweep (-batch-max and -batch-bytes bound a batch; oversize or
// deadline-critical requests bypass and serve per-request). Match sets
// are bit-identical to per-request serving; see the README's "Batched
// serving" walkthrough.
//
// Router mode: with -nodes id=url,... cad serves the cluster API
// instead of an automaton — consistent-hash placement of rule sets and
// sessions across the named cad nodes (compiled artifacts shipped to
// replicas, never recompiled), heartbeat membership with suspect/dead
// detection, checkpoint-shipped session failover, hedged /match
// fan-out, and GET /cluster for clients that route directly. See the
// README's "Cluster serving" walkthrough.
//
// Resilience: -request-timeout puts a server-side execution deadline on
// every match and feed (checked at sub-batch granularity; a feed cut off
// mid-chunk returns its partial matches with "truncated":true and the
// client re-sends the suffix). -wal-dir enables the session write-ahead
// log: compiles and per-feed session checkpoints are appended to a
// checksummed log that a restarting cad replays, so rule sets and open
// sessions survive kill -9 bit-identically. -cache-dir enables the
// content-addressed compile cache: every compiled automaton is
// serialized (internal/caformat) under hash(rules, front-end, options),
// so preload and WAL replay load instead of recompiling, and
// POST /rulesets/{name}/reload (guarded by -admin-token when set) swaps
// a rule set atomically under live traffic. /healthz answers liveness;
// /readyz flips to 503 at drain start before any listener closes. On
// SIGINT/SIGTERM cad drains gracefully: in-flight requests finish
// (bounded by -drain-timeout), then sessions close and their leased
// machines are released (their WAL checkpoints are kept, so a successor
// process resumes them).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cacheautomaton/internal/server"
	"cacheautomaton/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// addrs reports the listeners run actually bound (useful with ":0").
type addrs struct {
	HTTP, TCP, Metrics string
}

// run is the testable body of cad: it serves until ctx is canceled, then
// drains. ready (optional) is called once with the bound addresses.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addrs)) int {
	fs := flag.NewFlagSet("cad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	httpAddr := fs.String("http", "127.0.0.1:8480", "serve the HTTP/JSON API on this address")
	tcpAddr := fs.String("tcp", "", "also serve the line-framed TCP protocol on this address")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	rules := fs.String("rules", "", "preload a rule file into ruleset -ruleset")
	format := fs.String("format", "regex", "preload format: regex, anml, snort or clamav")
	rulesetName := fs.String("ruleset", "default", "name for the preloaded rule set")
	design := fs.String("design", "perf", "preload design: perf (CA_P) or space (CA_S)")
	caseIns := fs.Bool("i", false, "preload case-insensitively")
	workers := fs.Int("workers", 0, "bound on concurrent one-shot matches (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "bound on queued matches before shedding 503s (0 = 4x workers)")
	queueWait := fs.Duration("queue-wait", 2*time.Second, "max wait for a match worker slot")
	maxShards := fs.Int("max-shards", 0, "cap on per-request match shards (0 = GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 8<<20, "request body and payload cap in bytes")
	maxSessions := fs.Int("max-sessions", 1024, "bound on open streaming sessions")
	sessionIdle := fs.Duration("session-idle", 5*time.Minute, "reap sessions idle this long (<0 disables)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight work on shutdown")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side execution deadline per match/feed (0 disables)")
	walDir := fs.String("wal-dir", "", "directory for the session write-ahead log (crash recovery); empty disables")
	cacheDir := fs.String("cache-dir", "", "directory for the content-addressed compile cache: preload and WAL replay load serialized automata instead of recompiling; empty disables")
	adminToken := fs.String("admin-token", "", "bearer token required by admin endpoints (rule-set reload); empty leaves them open")
	slowMS := fs.Int("slow-ms", 250, "flight-recorder slow threshold in ms: requests at or above it are pinned and logged (<0 disables slow pinning)")
	traceRing := fs.Int("trace-ring", telemetry.DefaultTraceRingSize, "flight-recorder ring size: last N traces plus last N slow/error traces retained (0 disables tracing)")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	batchWindow := fs.Duration("batch-window", 0, "coalesce concurrent small matches into shared batched sweeps, waiting up to this long to fill a batch (0 disables)")
	batchMax := fs.Int("batch-max", 0, "max requests per batch (0 = 64; needs -batch-window)")
	batchBytes := fs.Int64("batch-bytes", 0, "per-request size cap and batch byte budget for coalescing (0 = 256 KiB; needs -batch-window)")
	nodes := fs.String("nodes", "", "router mode: comma-separated id=url cad nodes to route across (e.g. n1=http://10.0.0.1:8480,n2=http://10.0.0.2:8480); -http serves the cluster API instead of a node")
	replicas := fs.Int("replicas", 0, "router mode: nodes holding each rule set (0 = 2)")
	heartbeat := fs.Duration("heartbeat", 0, "router mode: health-check interval (0 = 250ms)")
	hedge := fs.Duration("hedge", 0, "router mode: wait on the primary before hedging a /match to a replica (0 = 30ms, negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(stderr, nil)
	default:
		fmt.Fprintf(stderr, "cad: bad -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	if *nodes != "" {
		return runRouter(ctx, routerOpts{
			httpAddr:     *httpAddr,
			metricsAddr:  *metricsAddr,
			nodes:        *nodes,
			replicas:     *replicas,
			heartbeat:    *heartbeat,
			hedge:        *hedge,
			drainTimeout: *drainTimeout,
			slowMS:       *slowMS,
			traceRing:    *traceRing,
		}, logger, stdout, stderr, ready)
	}

	slow := time.Duration(*slowMS) * time.Millisecond
	if *slowMS < 0 {
		slow = -1 // disables slow pinning; 0 would mean "use the default"
	}
	ringSize := *traceRing
	if ringSize <= 0 {
		ringSize = -1 // disables tracing; 0 would mean "use the default"
	}
	s := server.New(server.Config{
		MaxBodyBytes:   *maxBody,
		MatchWorkers:   *workers,
		QueueDepth:     *queue,
		QueueWait:      *queueWait,
		MaxShards:      *maxShards,
		MaxSessions:    *maxSessions,
		SessionIdle:    *sessionIdle,
		RequestTimeout: *requestTimeout,
		SlowRequest:    slow,
		TraceRingSize:  ringSize,
		Logger:         logger,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		BatchBytes:     *batchBytes,
		AdminToken:     *adminToken,
	})

	if *cacheDir != "" {
		// Attach before the WAL so replay's recompiles hit the cache: N
		// replayed sessions on one rule set cost at most one compile ever.
		if err := s.AttachCache(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "cad: cache %s: %v\n", *cacheDir, err)
			return 1
		}
		fmt.Fprintf(stdout, "cad: compile cache in %s\n", *cacheDir)
	}

	if *walDir != "" {
		// Replay before preload and before any listener opens: recovered
		// rule sets and sessions must be visible to the first request.
		st, err := s.AttachWAL(*walDir)
		if err != nil {
			fmt.Fprintf(stderr, "cad: wal %s: %v\n", *walDir, err)
			return 1
		}
		fmt.Fprintf(stdout, "cad: wal: replayed %d rulesets, resumed %d sessions (%d skipped)\n",
			st.Rulesets, st.Sessions, st.SkippedSessions)
	}

	if *rules != "" {
		info, err := preload(s, *rules, *format, *rulesetName, *design, *caseIns)
		if err != nil {
			fmt.Fprintf(stderr, "cad: preload %s: %v\n", *rules, err)
			return 1
		}
		fmt.Fprintf(stdout, "cad: ruleset %q: %d patterns, %d states, %d partitions, %.2f MB cache, compiled in %.1f ms\n",
			info.Name, info.Patterns, info.States, info.Partitions, info.CacheMB, info.CompileMS)
	}

	var bound addrs

	// The telemetry endpoint opens before the API listeners: its address
	// is printed first, so a supervisor scanning startup logs knows every
	// bound address by the time the HTTP line (the "serving" signal)
	// appears.
	if *metricsAddr != "" {
		ts, err := telemetry.Serve(*metricsAddr, nil)
		if err != nil {
			fmt.Fprintf(stderr, "cad: metrics endpoint: %v\n", err)
			return 1
		}
		defer ts.Close()
		bound.Metrics = ts.Addr()
		fmt.Fprintf(stdout, "cad: telemetry on http://%s/metrics\n", bound.Metrics)
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintf(stderr, "cad: listen %s: %v\n", *httpAddr, err)
		return 1
	}
	bound.HTTP = ln.Addr().String()
	httpSrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "cad: HTTP API on %s\n", bound.HTTP)

	var tcpSrv *server.TCPServer
	if *tcpAddr != "" {
		tln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "cad: listen %s: %v\n", *tcpAddr, err)
			httpSrv.Close()
			return 1
		}
		tcpSrv = s.ServeTCP(tln)
		bound.TCP = tcpSrv.Addr().String()
		fmt.Fprintf(stdout, "cad: TCP line protocol on %s\n", bound.TCP)
	}

	if ready != nil {
		ready(bound)
	}

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		fmt.Fprintf(stderr, "cad: http: %v\n", err)
		return 1
	}

	// Flip readiness first — /readyz answers 503 while every listener is
	// still open, so load balancers stop routing before anything closes.
	s.SetReady(false)
	fmt.Fprintf(stdout, "cad: draining (timeout %v)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "cad: http drain: %v\n", err)
		code = 1
	}
	if tcpSrv != nil {
		if err := tcpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(stderr, "cad: tcp drain: %v\n", err)
			code = 1
		}
	}
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "cad: session drain: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stdout, "cad: drained")
	return code
}

// preload compiles a rule file into the server before it starts serving.
func preload(s *server.Server, path, format, name, design string, caseIns bool) (*server.RulesetInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	req := server.CompileRequest{Format: format, CaseInsensitive: caseIns}
	if strings.HasPrefix(design, "s") {
		req.Design = "space"
	}
	if format == "regex" {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			req.Patterns = append(req.Patterns, line)
		}
	} else {
		req.Text = string(data)
	}
	return s.Compile(context.Background(), name, req)
}
