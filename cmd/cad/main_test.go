package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startCad runs the daemon on free ports and returns its bound addresses
// plus a stop func that triggers the drain and returns (exitCode, stdout).
func startCad(t *testing.T, extraArgs ...string) (addrs, func() (int, string)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-http", "127.0.0.1:0", "-drain-timeout", "5s"}, extraArgs...)
	var out, errOut bytes.Buffer
	boundCh := make(chan addrs, 1)
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, args, &out, &errOut, func(a addrs) { boundCh <- a })
	}()
	var bound addrs
	select {
	case bound = <-boundCh:
	case code := <-codeCh:
		t.Fatalf("cad exited early with %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("cad never became ready")
	}
	var stopCode int
	var stopLogs string
	stopped := false
	stop := func() (int, string) {
		if stopped {
			return stopCode, stopLogs
		}
		stopped = true
		cancel()
		select {
		case stopCode = <-codeCh:
			stopLogs = out.String() + errOut.String()
		case <-time.After(15 * time.Second):
			t.Fatal("cad never exited")
		}
		return stopCode, stopLogs
	}
	t.Cleanup(func() { stop() })
	return bound, stop
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: bad response %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

func TestCadServesHTTP(t *testing.T) {
	rules := writeFile(t, "rules.txt", "cat\ndog.*food\n# comment\n")
	bound, stop := startCad(t, "-rules", rules, "-ruleset", "pets")
	base := "http://" + bound.HTTP

	// The preloaded rule set serves one-shot matches.
	var match struct {
		Matches []struct {
			Offset  int64 `json:"offset"`
			Pattern int   `json:"pattern"`
		} `json:"matches"`
	}
	code := postJSON(t, base+"/match", map[string]any{"ruleset": "pets", "input": "the cat ate dog brand food"}, &match)
	if code != 200 || len(match.Matches) != 2 {
		t.Fatalf("match: code %d, %+v", code, match)
	}
	if match.Matches[0].Offset != 6 || match.Matches[1].Offset != 25 {
		t.Fatalf("offsets: %+v", match.Matches)
	}

	// Streaming session across a chunk boundary.
	var sess struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, base+"/sessions", map[string]any{"ruleset": "pets"}, &sess); code != 200 {
		t.Fatal("open session")
	}
	var feed struct {
		Matches []struct {
			Offset int64 `json:"offset"`
		} `json:"matches"`
	}
	postJSON(t, base+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": "a ca"}, &feed)
	if len(feed.Matches) != 0 {
		t.Fatalf("partial match leaked: %+v", feed)
	}
	postJSON(t, base+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": "t!"}, &feed)
	if len(feed.Matches) != 1 || feed.Matches[0].Offset != 4 {
		t.Fatalf("boundary match: %+v", feed)
	}

	// Health and graceful exit.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	code, logs := stop()
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, logs)
	}
	for _, want := range []string{"ruleset \"pets\"", "HTTP API on", "draining", "drained"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
}

func TestCadServesTCPAndMetrics(t *testing.T) {
	bound, stop := startCad(t, "-tcp", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	if bound.TCP == "" || bound.Metrics == "" {
		t.Fatalf("bound = %+v", bound)
	}

	conn, err := net.Dial("tcp", bound.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	send := func(req string) map[string]any {
		t.Helper()
		if _, err := fmt.Fprintln(conn, req); err != nil {
			t.Fatal(err)
		}
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.Unmarshal(line, &out); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		return out
	}

	if r := send(`{"op":"ping"}`); r["ok"] != true || r["result"] != "pong" {
		t.Fatalf("ping: %v", r)
	}
	if r := send(`{"op":"compile","name":"re","patterns":["needle"]}`); r["ok"] != true {
		t.Fatalf("compile: %v", r)
	}
	r := send(`{"op":"match","ruleset":"re","input":"a needle here"}`)
	if r["ok"] != true {
		t.Fatalf("match: %v", r)
	}
	ms := r["result"].(map[string]any)["matches"].([]any)
	if len(ms) != 1 || ms[0].(map[string]any)["offset"].(float64) != 7 {
		t.Fatalf("tcp matches: %v", ms)
	}
	// Sessions over TCP, and structured errors for junk.
	r = send(`{"op":"open","ruleset":"re"}`)
	id := r["result"].(map[string]any)["session"].(string)
	r = send(`{"op":"feed","session":"` + id + `","chunk":"xx needle"}`)
	if r["ok"] != true {
		t.Fatalf("feed: %v", r)
	}
	if r := send(`{"op":"nope"}`); r["ok"] != false || r["status"].(float64) != 400 {
		t.Fatalf("unknown op: %v", r)
	}
	if r := send(`{"op":`); r["ok"] != false {
		t.Fatalf("torn JSON: %v", r)
	}

	// The telemetry endpoint exports the server collectors.
	resp, err := http.Get("http://" + bound.Metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ca_server_requests_total") {
		t.Errorf("metrics missing server collectors:\n%.400s", body)
	}

	if code, logs := stop(); code != 0 {
		t.Fatalf("exit = %d\n%s", code, logs)
	}
}

func TestCadBadInvocations(t *testing.T) {
	ctx := context.Background()
	var out, errOut bytes.Buffer
	if code := run(ctx, []string{"-nope"}, &out, &errOut, nil); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	errOut.Reset()
	if code := run(ctx, []string{"-rules", "/does/not/exist"}, &out, &errOut, nil); code != 1 {
		t.Errorf("missing rules: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "preload") {
		t.Errorf("stderr: %q", errOut.String())
	}
	errOut.Reset()
	rules := writeFile(t, "bad.txt", "(unclosed\n")
	if code := run(ctx, []string{"-rules", rules}, &out, &errOut, nil); code != 1 {
		t.Errorf("bad rules: exit %d", code)
	}
	errOut.Reset()
	if code := run(ctx, []string{"-http", "256.256.256.256:1"}, &out, &errOut, nil); code != 1 {
		t.Errorf("bad listen addr: exit %d", code)
	}
}
