package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestCadRouterMode boots two node cads and a router cad in front of
// them, then drives the full path end to end: compile through the
// router (artifact shipped to the replica), match through the router,
// the /cluster routing table, and a graceful drain.
func TestCadRouterMode(t *testing.T) {
	n1, stop1 := startCad(t)
	defer stop1()
	n2, stop2 := startCad(t)
	defer stop2()

	nodes := fmt.Sprintf("n1=http://%s,n2=http://%s", n1.HTTP, n2.HTTP)
	rt, stopRt := startCad(t, "-nodes", nodes, "-heartbeat", "50ms")
	base := "http://" + rt.HTTP

	body, _ := json.Marshal(map[string]any{"patterns": []string{"ab+c"}})
	req, _ := http.NewRequest(http.MethodPut, base+"/rulesets/ids", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compile via router: %v code %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Post(base+"/match", "application/json",
		strings.NewReader(`{"ruleset":"ids","input":"xxabbcxx"}`))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("match via router: %v code %d", err, resp.StatusCode)
	}
	var mr struct {
		Matches []struct{ Offset int64 } `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Matches) != 1 || mr.Matches[0].Offset != 5 {
		t.Fatalf("matches = %+v, want one at 5", mr.Matches)
	}

	resp, err = http.Get(base + "/cluster")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster table: %v code %d", err, resp.StatusCode)
	}
	var tab struct {
		Quorum   bool `json:"quorum"`
		Nodes    []struct{ ID, State string }
		Rulesets map[string]struct{ Holders []string }
	}
	if err := json.NewDecoder(resp.Body).Decode(&tab); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !tab.Quorum || len(tab.Nodes) != 2 {
		t.Fatalf("table = %+v, want quorum with 2 nodes", tab)
	}
	if h := tab.Rulesets["ids"].Holders; len(h) != 2 {
		t.Fatalf("ids holders = %v, want both nodes", h)
	}

	code, logs := stopRt()
	if code != 0 {
		t.Fatalf("router drain exit %d\n%s", code, logs)
	}
	if !strings.Contains(logs, "cad: cluster router on") || !strings.Contains(logs, "cad: drained") {
		t.Fatalf("router logs missing lifecycle lines:\n%s", logs)
	}
}

// TestCadRouterBadNodes rejects a malformed -nodes spec before binding.
func TestCadRouterBadNodes(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{"-http", "127.0.0.1:0", "-nodes", "garbage"}, &out, &errOut, nil)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bad -nodes entry") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}
