package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"cacheautomaton/internal/cluster"
	"cacheautomaton/internal/telemetry"
)

// routerOpts carries the -nodes mode's flag subset into runRouter.
type routerOpts struct {
	httpAddr     string
	metricsAddr  string
	nodes        string
	replicas     int
	heartbeat    time.Duration
	hedge        time.Duration
	drainTimeout time.Duration
	slowMS       int
	traceRing    int
}

// runRouter is cad's cluster-router mode: instead of serving an
// automaton itself, it routes the HTTP API across the cad nodes named
// by -nodes — consistent-hash placement of rule sets and sessions,
// heartbeat membership, checkpoint-shipped session failover, hedged
// /match fan-out, and the /cluster routing table for clients that want
// to route directly. Nodes can join and leave at runtime through
// POST /cluster/join and DELETE /cluster/nodes/{id}.
func runRouter(ctx context.Context, opts routerOpts, logger *slog.Logger, stdout, stderr io.Writer, ready func(addrs)) int {
	slow := time.Duration(opts.slowMS) * time.Millisecond
	if opts.slowMS < 0 {
		slow = -1
	}
	ringSize := opts.traceRing
	if ringSize <= 0 {
		ringSize = -1
	}
	r := cluster.NewRouter(cluster.Config{
		Replicas:          opts.replicas,
		HeartbeatInterval: opts.heartbeat,
		HedgeDelay:        opts.hedge,
		Logger:            logger,
		SlowRequest:       slow,
		TraceRingSize:     ringSize,
	})

	for _, spec := range strings.Split(opts.nodes, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		id, url, ok := strings.Cut(spec, "=")
		if !ok || id == "" || url == "" {
			fmt.Fprintf(stderr, "cad: bad -nodes entry %q (want id=url)\n", spec)
			return 2
		}
		if err := r.AddNode(ctx, id, url); err != nil {
			fmt.Fprintf(stderr, "cad: join %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(stdout, "cad: router: node %s at %s\n", id, url)
	}

	var bound addrs
	if opts.metricsAddr != "" {
		ts, err := telemetry.Serve(opts.metricsAddr, nil)
		if err != nil {
			fmt.Fprintf(stderr, "cad: metrics endpoint: %v\n", err)
			return 1
		}
		defer ts.Close()
		bound.Metrics = ts.Addr()
		fmt.Fprintf(stdout, "cad: telemetry on http://%s/metrics\n", bound.Metrics)
	}

	ln, err := net.Listen("tcp", opts.httpAddr)
	if err != nil {
		fmt.Fprintf(stderr, "cad: listen %s: %v\n", opts.httpAddr, err)
		return 1
	}
	bound.HTTP = ln.Addr().String()
	httpSrv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "cad: cluster router on %s\n", bound.HTTP)

	if ready != nil {
		ready(bound)
	}

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		fmt.Fprintf(stderr, "cad: http: %v\n", err)
		return 1
	}

	// Same drain order as node mode: the router's /readyz flips 503 at
	// Shutdown start, so a balancer stops routing before listeners close.
	fmt.Fprintf(stdout, "cad: router draining (timeout %v)\n", opts.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	code := 0
	if err := r.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "cad: router drain: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "cad: http drain: %v\n", err)
		code = 1
	}
	fmt.Fprintln(stdout, "cad: drained")
	return code
}
