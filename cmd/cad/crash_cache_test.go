package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cacheautomaton/internal/server"
)

// metricsJSONURL extracts the telemetry endpoint from a spawned cad's
// startup logs and returns its /metrics.json URL.
func metricsJSONURL(t *testing.T, logs []string) string {
	t.Helper()
	for _, line := range logs {
		if rest, ok := strings.CutPrefix(line, "cad: telemetry on "); ok {
			return rest + ".json"
		}
	}
	t.Fatalf("no telemetry line in logs:\n%s", strings.Join(logs, "\n"))
	return ""
}

// scrapeCounter reads one counter from a cad /metrics.json endpoint.
func scrapeCounter(t *testing.T, url, name string) int64 {
	t.Helper()
	var all map[string]any
	if code := getJSON(t, url, &all); code != 200 {
		t.Fatalf("scrape %s: %d", url, code)
	}
	v, ok := all[name]
	if !ok {
		t.Fatalf("metric %q missing from %s (have %d metrics)", name, url, len(all))
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("metric %q = %T %v, want a number", name, v, v)
	}
	return int64(f)
}

// TestCadCrashRecoveryWithCache extends the crash drill with the compile
// cache: a cad with -wal-dir AND -cache-dir is SIGKILLed mid-session; the
// restarted process must replay from the cache (ca_cache_hits_total == 1,
// ca_cache_misses_total == 0 — the WAL replay loaded the serialized
// automaton, it did not recompile) and continue the session bit-
// identically. Then the cache entry is corrupted on disk and the process
// killed again: the third boot must fall back to a recompile (counted by
// ca_cache_errors_total), never a failed start, and still serve.
func TestCadCrashRecoveryWithCache(t *testing.T) {
	walDir := t.TempDir()
	cacheDir := t.TempDir()

	chunks := []string{
		"xx needle1 yy",
		"more filler then need", // ends mid-pattern...
		"le5 and then needle7",  // ...which completes after the first crash
		"quiet chunk",
		"last one: needle9 end",
	}
	const killAfter = 2 // chunks fed to process 1
	const corruptAt = 4 // chunks fed before the cache entry is corrupted
	compileReq := map[string]any{"patterns": []string{"needle[0-9]"}, "seed": 42}

	// Reference: the same session served by one uninterrupted server.
	type wm struct {
		Offset  int64 `json:"offset"`
		Pattern int   `json:"pattern"`
	}
	var wantMatches []wm
	var wantPos int64
	{
		ref := server.New(server.Config{})
		defer ref.Shutdown(context.Background())
		if _, err := ref.Compile(context.Background(), "rs", server.CompileRequest{Patterns: []string{"needle[0-9]"}, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		sess, err := ref.OpenSession(context.Background(), server.OpenSessionRequest{Ruleset: "rs"})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			fr, err := ref.Feed(context.Background(), sess.Session, server.FeedRequest{Chunk: c})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range fr.Matches {
				wantMatches = append(wantMatches, wm{m.Offset, m.Pattern})
			}
			wantPos = fr.Pos
		}
	}

	args := []string{"-http", "127.0.0.1:0", "-wal-dir", walDir, "-cache-dir", cacheDir, "-metrics-addr", "127.0.0.1:0"}

	// Process 1: compile (cache miss, entry stored), feed, SIGKILL.
	base, cmd, logs := spawnCad(t, args...)
	if !strings.Contains(strings.Join(logs, "\n"), "cad: compile cache in "+cacheDir) {
		t.Fatalf("no compile-cache line in logs:\n%s", strings.Join(logs, "\n"))
	}
	murl := metricsJSONURL(t, logs)
	if code := putJSON(t, base+"/rulesets/rs", compileReq, nil); code != 200 {
		t.Fatalf("compile: %d", code)
	}
	if h, m := scrapeCounter(t, murl, "ca_cache_hits_total"), scrapeCounter(t, murl, "ca_cache_misses_total"); h != 0 || m != 1 {
		t.Fatalf("cold boot: hits=%d misses=%d, want 0/1", h, m)
	}
	var sess struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, base+"/sessions", map[string]any{"ruleset": "rs"}, &sess); code != 200 {
		t.Fatal("open session")
	}
	var got []wm
	var feed struct {
		Matches []wm  `json:"matches"`
		Pos     int64 `json:"pos"`
	}
	for _, c := range chunks[:killAfter] {
		if code := postJSON(t, base+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": c}, &feed); code != 200 {
			t.Fatalf("feed: %d", code)
		}
		got = append(got, feed.Matches...)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Process 2: replay must hit the cache, not recompile.
	base2, cmd2, logs2 := spawnCad(t, args...)
	if !strings.Contains(strings.Join(logs2, "\n"), "replayed 1 rulesets, resumed 1 sessions") {
		t.Fatalf("replay log missing; logs:\n%s", strings.Join(logs2, "\n"))
	}
	murl2 := metricsJSONURL(t, logs2)
	if h, m := scrapeCounter(t, murl2, "ca_cache_hits_total"), scrapeCounter(t, murl2, "ca_cache_misses_total"); h != 1 || m != 0 {
		t.Fatalf("cached replay: hits=%d misses=%d, want 1/0 (replay must not recompile)", h, m)
	}
	for _, c := range chunks[killAfter:corruptAt] {
		if code := postJSON(t, base2+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": c}, &feed); code != 200 {
			t.Fatalf("feed after cached restart: %d", code)
		}
		got = append(got, feed.Matches...)
	}
	if err := cmd2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd2.Wait()

	// Corrupt the cache entry: the next boot must recompile, not die.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.caf"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly 1", entries, err)
	}
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(blob) / 2; i < len(blob)/2+8 && i < len(blob); i++ {
		blob[i] ^= 0x5a
	}
	if err := os.WriteFile(entries[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Process 3: corrupted entry falls back to recompile and still serves.
	base3, _, logs3 := spawnCad(t, args...)
	if !strings.Contains(strings.Join(logs3, "\n"), "replayed 1 rulesets, resumed 1 sessions") {
		t.Fatalf("replay log missing after corruption; logs:\n%s", strings.Join(logs3, "\n"))
	}
	murl3 := metricsJSONURL(t, logs3)
	if e := scrapeCounter(t, murl3, "ca_cache_errors_total"); e < 1 {
		t.Fatalf("ca_cache_errors_total = %d, want >= 1 after corrupted entry", e)
	}
	if h := scrapeCounter(t, murl3, "ca_cache_hits_total"); h != 0 {
		t.Fatalf("ca_cache_hits_total = %d, want 0 after corrupted entry", h)
	}
	for _, c := range chunks[corruptAt:] {
		if code := postJSON(t, base3+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": c}, &feed); code != 200 {
			t.Fatalf("feed after corrupted-cache restart: %d", code)
		}
		got = append(got, feed.Matches...)
	}

	// Bit-identical continuation across both restarts.
	if feed.Pos != wantPos {
		t.Errorf("final pos = %d, want %d", feed.Pos, wantPos)
	}
	if len(got) != len(wantMatches) {
		t.Fatalf("matches across crashes = %+v, want %+v", got, wantMatches)
	}
	for i := range got {
		if got[i] != wantMatches[i] {
			t.Errorf("match %d = %+v, want %+v", i, got[i], wantMatches[i])
		}
	}
}
