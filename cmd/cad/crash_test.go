package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"cacheautomaton/internal/server"
)

// TestCadCrashHelper is not a test: it is the subprocess body for
// TestCadCrashRecovery, re-execing this test binary as a real cad
// process that can be SIGKILLed. Arguments arrive via CAD_ARGS.
func TestCadCrashHelper(t *testing.T) {
	if os.Getenv("CAD_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCadCrashRecovery")
	}
	os.Exit(run(context.Background(), strings.Split(os.Getenv("CAD_ARGS"), " "), os.Stdout, os.Stderr, nil))
}

// spawnCad starts this test binary as a cad subprocess and scans its
// stdout until the HTTP listener address appears. It returns the base
// URL, the command (for Kill/Wait), and the log lines seen so far.
func spawnCad(t *testing.T, args ...string) (string, *exec.Cmd, []string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCadCrashHelper$")
	cmd.Env = append(os.Environ(), "CAD_CRASH_HELPER=1", "CAD_ARGS="+strings.Join(args, " "))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	var logs []string
	sc := bufio.NewScanner(out)
	deadline := time.Now().Add(15 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		logs = append(logs, line)
		if addr, ok := strings.CutPrefix(line, "cad: HTTP API on "); ok {
			go func() { // drain the pipe so the subprocess never blocks on stdout
				for sc.Scan() {
				}
			}()
			return "http://" + addr, cmd, logs
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("cad subprocess never became ready; logs:\n%s", strings.Join(logs, "\n"))
	return "", nil, nil
}

// TestCadCrashRecovery is the end-to-end crash drill: a cad process
// with -wal-dir is killed with SIGKILL in the middle of a streaming
// session, a fresh process is started on the same WAL directory, and
// the resumed session's remaining output must be byte-for-byte what an
// uninterrupted server would have produced — including a match whose
// pattern straddles the kill point, which proves the automaton's
// architectural state (not just the stream offset) was recovered.
func TestCadCrashRecovery(t *testing.T) {
	walDir := t.TempDir()

	// Eight chunks; the crash lands after chunk 3 ("...need" sent, "le5..."
	// not yet). Matches occur before, across, and after the kill point.
	chunks := []string{
		"xx needle1 yy",
		"filler with no hits at all",
		"more filler then need", // ends mid-pattern...
		"le5 and then needle7",  // ...which completes after the crash
		"quiet chunk",
		"last one: needle9 end",
	}
	const killAfter = 3 // chunks fed to the first process

	compileReq := map[string]any{"patterns": []string{"needle[0-9]"}, "seed": 42}

	// Reference: the same session served by one uninterrupted server.
	type wm struct {
		Offset  int64 `json:"offset"`
		Pattern int   `json:"pattern"`
	}
	var wantMatches []wm
	var wantPos int64
	{
		ref := server.New(server.Config{})
		defer ref.Shutdown(context.Background())
		if _, err := ref.Compile(context.Background(), "rs", server.CompileRequest{Patterns: []string{"needle[0-9]"}, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		sess, err := ref.OpenSession(context.Background(), server.OpenSessionRequest{Ruleset: "rs"})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			fr, err := ref.Feed(context.Background(), sess.Session, server.FeedRequest{Chunk: c})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range fr.Matches {
				wantMatches = append(wantMatches, wm{m.Offset, m.Pattern})
			}
			wantPos = fr.Pos
		}
	}

	// Process 1: compile, open, feed the first chunks, then SIGKILL.
	base, cmd, _ := spawnCad(t, "-http", "127.0.0.1:0", "-wal-dir", walDir)
	var info struct {
		Name string `json:"name"`
	}
	if code := putJSON(t, base+"/rulesets/rs", compileReq, &info); code != 200 {
		t.Fatalf("compile: %d", code)
	}
	var sess struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, base+"/sessions", map[string]any{"ruleset": "rs"}, &sess); code != 200 {
		t.Fatal("open session")
	}
	var got []wm
	var feed struct {
		Matches []wm  `json:"matches"`
		Pos     int64 `json:"pos"`
	}
	for _, c := range chunks[:killAfter] {
		if code := postJSON(t, base+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": c}, &feed); code != 200 {
			t.Fatalf("feed: %d", code)
		}
		got = append(got, feed.Matches...)
	}
	posAtKill := feed.Pos

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no dtors
		t.Fatal(err)
	}
	cmd.Wait()

	// Process 2: same WAL directory. It must replay the compile and
	// resume the session under its original id at the acknowledged pos.
	base2, _, logs := spawnCad(t, "-http", "127.0.0.1:0", "-wal-dir", walDir)
	wantReplay := "cad: wal: replayed 1 rulesets, resumed 1 sessions (0 skipped)"
	if !strings.Contains(strings.Join(logs, "\n"), wantReplay) {
		t.Fatalf("replay log missing %q; logs:\n%s", wantReplay, strings.Join(logs, "\n"))
	}
	var sessions []struct {
		Session string `json:"session"`
		Pos     int64  `json:"pos"`
	}
	if code := getJSON(t, base2+"/sessions", &sessions); code != 200 {
		t.Fatalf("list sessions: %d", code)
	}
	resumed := false
	for _, si := range sessions {
		if si.Session == sess.Session {
			resumed = true
			if si.Pos != posAtKill {
				t.Fatalf("resumed pos = %d, want %d", si.Pos, posAtKill)
			}
		}
	}
	if !resumed {
		t.Fatalf("session %s not resumed; have %+v", sess.Session, sessions)
	}
	for _, c := range chunks[killAfter:] {
		if code := postJSON(t, base2+"/sessions/"+sess.Session+"/feed", map[string]any{"chunk": c}, &feed); code != 200 {
			t.Fatalf("feed after restart: %d", code)
		}
		got = append(got, feed.Matches...)
	}

	if feed.Pos != wantPos {
		t.Errorf("final pos = %d, want %d", feed.Pos, wantPos)
	}
	if len(got) != len(wantMatches) {
		t.Fatalf("matches across crash = %+v, want %+v", got, wantMatches)
	}
	for i := range got {
		if got[i] != wantMatches[i] {
			t.Errorf("match %d = %+v, want %+v", i, got[i], wantMatches[i])
		}
	}
	// The cross-crash match is the load-bearing one: its pattern began
	// before the kill and completed after the restart.
	crossed := false
	for _, m := range got {
		if m.Offset > posAtKill-10 && m.Offset < posAtKill+10 {
			crossed = true
		}
	}
	if !crossed {
		t.Errorf("no match straddled the kill point (pos %d): %+v", posAtKill, got)
	}
}

func putJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	return doMethodJSON(t, "PUT", url, body, out)
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	return doMethodJSON(t, "GET", url, nil, out)
}

func doMethodJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		_ = json.Unmarshal(data, out)
	}
	return resp.StatusCode
}
