// Command cagen materializes the synthetic benchmarks: it writes a
// benchmark's NFA as ANML and/or its input stream as a trace file, so the
// workloads can be fed to external tools (VASim, AP SDK) or re-run
// byte-identically.
//
// Usage:
//
//	cagen -bench Snort -scale 0.5 -anml snort.anml -trace snort.10mb -size 10485760
//	cagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cacheautomaton/internal/anml"
	"cacheautomaton/internal/telemetry"
	"cacheautomaton/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	scale := flag.Float64("scale", 1.0, "benchmark scale (1.0 = paper-sized)")
	seed := flag.Int64("seed", 1, "generator seed")
	anmlOut := flag.String("anml", "", "write the benchmark NFA as ANML to this file")
	traceOut := flag.String("trace", "", "write the input stream to this file")
	size := flag.Int("size", 1<<20, "trace size in bytes")
	list := flag.Bool("list", false, "list available benchmarks")
	timings := flag.Bool("timings", false, "print generation phase timings to stderr")
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			p := s.Paper
			fmt.Printf("%-18s %7d states, %5d CCs (largest %5d)  —  %s\n",
				s.Name, p.States, p.CCs, p.LargestCC, s.Description)
		}
		return
	}
	spec := workload.ByName(*bench)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "cagen: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	if *anmlOut == "" && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "cagen: nothing to do (pass -anml and/or -trace)")
		os.Exit(2)
	}
	var tr *telemetry.Trace
	if *timings {
		tr = telemetry.NewTrace("cagen/" + spec.Name)
	}
	if *anmlOut != "" {
		sb := tr.StartPhase("build-nfa")
		n, err := spec.Build(*seed, *scale)
		if err != nil {
			fatal(err)
		}
		sb.SetAttr("states", int64(n.NumStates()))
		sb.End()
		sw := tr.StartPhase("write-anml")
		f, err := os.Create(*anmlOut)
		if err != nil {
			fatal(err)
		}
		if err := anml.Write(f, n, spec.Name, nil); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		sw.End()
		st := n.ComputeStats()
		fmt.Printf("wrote %s: %d states, %d CCs\n", *anmlOut, st.States, st.ConnectedComponents)
	}
	if *traceOut != "" {
		sg := tr.StartPhase("generate-trace")
		input := spec.Input(*seed, *size)
		sg.SetAttr("bytes", int64(len(input)))
		sg.End()
		if err := os.WriteFile(*traceOut, input, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes\n", *traceOut, *size)
	}
	if *timings {
		fmt.Fprint(os.Stderr, tr.Report().String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cagen:", err)
	os.Exit(1)
}
