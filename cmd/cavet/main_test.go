package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seededModule is a synthetic module carrying one instance of each bug
// class cavet exists to catch, marked with // SEED:<analyzer> comments.
// The test derives each expected finding position from its marker, so
// the fixtures can be edited without recounting lines.
var seededModule = map[string]string{
	"go.mod": "module example.com/seeded\n\ngo 1.21\n",

	"machine/machine.go": `package machine

import "context"

type Machine struct{}

func (m *Machine) Run(in []byte) {}

func (m *Machine) RunContext(ctx context.Context, in []byte) error {
	m.Run(in)
	return ctx.Err()
}

type Pool struct{}

func (p *Pool) Get() (*Machine, error) { return &Machine{}, nil }
func (p *Pool) Put(m *Machine)         {}
`,

	// The PR 3 deadlock: session.mu acquired while Server.mu is held.
	"server/server.go": `package server

import "sync"

type Server struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

type session struct {
	mu sync.Mutex
}

func (s *Server) Broadcast() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.mu.Lock() // SEED:lockorder
		sess.mu.Unlock()
	}
}
`,

	"server/serve.go": `package server

import (
	"context"

	"example.com/seeded/machine"
)

func (s *Server) Match(ctx context.Context, p *machine.Pool, in []byte) error {
	m, err := p.Get()
	if err != nil {
		return err
	}
	defer p.Put(m)
	m.Run(in) // SEED:ctxpropagate
	return nil
}

func (s *Server) Lease(p *machine.Pool) {
	m, _ := p.Get() // SEED:leasebalance
	m.Run(nil)
}

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func (s *Server) snapshot(w *wal) {
	w.Append(nil) // SEED:errdrop
}
`,

	"telemetry/trace.go": `package telemetry

type Span struct{ note string }

func (s *Span) End() {}

func (s *Span) SetNote(n string) { s.note = n }

type ReqTrace struct{}

func (rt *ReqTrace) StartStage(name string) *Span { return &Span{} }
`,

	// An unbalanced span and a fire-and-forget goroutine.
	"server/trace.go": `package server

import "example.com/seeded/telemetry"

func (s *Server) traced(rt *telemetry.ReqTrace) {
	sp := rt.StartStage("match") // SEED:spanbalance
	sp.SetNote("left open")
}

func leak() {
	for {
	}
}

func (s *Server) background() {
	go leak() // SEED:goroutinelife
}
`,

	// A decoded wire length reaching make with no cap check.
	"caformat/decode.go": `package caformat

import "encoding/binary"

func decodeBody(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	return make([]byte, n) // SEED:boundedalloc
}
`,

	// A loop-wrapped feed RPC and an egress call with no faults seam.
	"cluster/feed.go": `package cluster

type Router struct{}

func (r *Router) nodeFeed(node string) (int, error) { return 0, nil }

func (r *Router) Feed(nodes []string) {
	for range nodes {
		_, _ = r.nodeFeed("n") // SEED:singleattempt
	}
}
`,

	"cluster/rpc.go": `package cluster

import "net/http"

func (r *Router) probe(c *http.Client, url string) error {
	resp, err := c.Get(url) // SEED:seamcover
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
`,
}

// markerLine returns the 1-based line of the marker in src.
func markerLine(t *testing.T, src, marker string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found", marker)
	return 0
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSeededBugsAreCaught(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}

	expected := []struct {
		file, marker, analyzer string
	}{
		{"server/server.go", "SEED:lockorder", "lockorder"},
		{"server/serve.go", "SEED:ctxpropagate", "ctxpropagate"},
		{"server/serve.go", "SEED:leasebalance", "leasebalance"},
		{"server/serve.go", "SEED:errdrop", "errdrop"},
		{"server/trace.go", "SEED:spanbalance", "spanbalance"},
		{"server/trace.go", "SEED:goroutinelife", "goroutinelife"},
		{"caformat/decode.go", "SEED:boundedalloc", "boundedalloc"},
		{"cluster/feed.go", "SEED:singleattempt", "singleattempt"},
		{"cluster/rpc.go", "SEED:seamcover", "seamcover"},
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for _, want := range expected {
		line := markerLine(t, seededModule[want.file], "// "+want.marker)
		prefix := fmt.Sprintf("%s:%d:", want.file, line)
		found := false
		for _, out := range lines {
			if strings.HasPrefix(out, prefix) && strings.Contains(out, ": "+want.analyzer+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding at %s\noutput:\n%s", want.analyzer, prefix, &stdout)
		}
	}
	if len(lines) != len(expected) {
		t.Errorf("got %d findings, want %d:\n%s", len(lines), len(expected), &stdout)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/clean\n\ngo 1.21\n",
		"ok.go":  "package clean\n\nfunc OK() int { return 1 }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", &stdout)
	}
}

func TestSuppressedSeedIsSilent(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/quiet\n\ngo 1.21\n",
		"w.go": `package quiet

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func snapshot(w *wal) {
	//cavet:ignore errdrop exercising the suppression path end to end
	w.Append(nil)
}
`,
	}
	dir := writeModule(t, files)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", code, &stdout)
	}
}

func TestMissingReasonIsAFinding(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/noreason\n\ngo 1.21\n",
		"w.go": `package noreason

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func snapshot(w *wal) {
	//cavet:ignore errdrop
	w.Append(nil)
}
`,
	}
	dir := writeModule(t, files)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, &stdout)
	}
	if !strings.Contains(stdout.String(), "cavet: malformed suppression") {
		t.Errorf("missing-reason directive not reported:\n%s", &stdout)
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"lockorder", "leasebalance", "ctxpropagate", "errdrop", "atomicmix", "metricname",
		"spanbalance", "goroutinelife", "boundedalloc", "singleattempt", "seamcover",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, &stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-C", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("no go.mod: exit = %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("extra args: exit = %d, want 2", code)
	}
	if code := run([]string{"-format", "xml", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown format: exit = %d, want 2", code)
	}
}

func TestStaleSuppressionIsAFinding(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/stale\n\ngo 1.21\n",
		"w.go": `package stale

func OK() int {
	//cavet:ignore errdrop nothing on the next line actually drops an error
	return 1
}
`,
	}
	dir := writeModule(t, files)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, &stdout)
	}
	if !strings.Contains(stdout.String(), "stale suppression") {
		t.Errorf("stale directive not reported:\n%s", &stdout)
	}
}

func TestFormatJSON(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-format", "json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var findings []struct {
		File      string `json:"file"`
		Line      int    `json:"line"`
		Column    int    `json:"column"`
		Analyzer  string `json:"analyzer"`
		Message   string `json:"message"`
		Baselined bool   `json:"baselined"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, &stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	seen := map[string]bool{}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		seen[f.Analyzer] = true
	}
	for _, a := range []string{"lockorder", "spanbalance", "boundedalloc", "singleattempt", "seamcover"} {
		if !seen[a] {
			t.Errorf("JSON output missing a %s finding", a)
		}
	}
}

// TestFormatSARIF checks the emitted log against the structural
// requirements of the SARIF 2.1.0 schema: the version/$schema pair, the
// runs/tool/driver spine, rule declarations, and for every result a
// ruleId, level, message.text, and a physicalLocation whose startLine
// is at least 1.
func TestFormatSARIF(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-format", "sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				BaselineState string `json:"baselineState"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, &stdout)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "cavet" {
		t.Errorf("driver name = %q, want cavet", run0.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	for _, res := range run0.Results {
		if !rules[res.RuleID] {
			t.Errorf("result ruleId %q has no matching rule declaration", res.RuleID)
		}
		if res.Level != "error" && res.Level != "note" {
			t.Errorf("result level = %q, want error or note", res.Level)
		}
		if res.Message.Text == "" {
			t.Error("result with empty message.text")
		}
		if res.BaselineState != "new" {
			t.Errorf("baselineState = %q, want new (no baseline given)", res.BaselineState)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" {
			t.Error("result with empty artifactLocation.uri")
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine = %d, want >= 1", loc.Region.StartLine)
		}
	}
}

func TestFormatGitHub(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-format", "github", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "::error file=") {
		t.Errorf("github format missing ::error command:\n%s", out)
	}
	if !strings.Contains(out, "title=cavet/lockorder") {
		t.Errorf("github format missing analyzer title:\n%s", out)
	}
}

// TestBaselineRoundTrip exercises the full grandfathering cycle:
// -write-baseline swallows the current findings, -baseline turns them
// non-fatal, a new bug on top still fails, and fixing a baselined bug
// reports the leftover entry as removable.
func TestBaselineRoundTrip(t *testing.T) {
	dir := writeModule(t, seededModule)
	base := filepath.Join(t.TempDir(), "cavet.baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline: exit = %d, want 0\nstderr:\n%s", code, &stderr)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("all-baselined run: exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "(baselined)") {
		t.Errorf("baselined findings not marked in text output:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "none new") {
		t.Errorf("missing none-new summary on stderr:\n%s", &stderr)
	}

	// A fresh bug must fail even with every old finding grandfathered.
	newBug := filepath.Join(dir, "server", "extra.go")
	if err := os.WriteFile(newBug, []byte(`package server

func (s *Server) snapshotTwice(w *wal) {
	w.Append(nil)
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-bug run: exit = %d, want 1\nstdout:\n%s", code, &stdout)
	}
	if !strings.Contains(stderr.String(), "new finding") {
		t.Errorf("missing new-finding summary on stderr:\n%s", &stderr)
	}

	// Fix a baselined bug: its entry now matches nothing and should be
	// called out for removal, without failing the run.
	if err := os.Remove(newBug); err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(seededModule["server/serve.go"],
		"w.Append(nil) // SEED:errdrop",
		"if err := w.Append(nil); err != nil {\n\t\tpanic(err)\n\t}", 1)
	if err := os.WriteFile(filepath.Join(dir, "server", "serve.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed-bug run: exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "matches nothing") {
		t.Errorf("stale baseline entry not reported:\n%s", &stderr)
	}
}

func TestBaselineSARIFMarksUnchanged(t *testing.T) {
	dir := writeModule(t, seededModule)
	base := filepath.Join(t.TempDir(), "cavet.baseline.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline: exit = %d, want 0", code)
	}
	stdout.Reset()
	if code := run([]string{"-C", dir, "-baseline", base, "-format", "sarif", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	out := stdout.String()
	if !strings.Contains(out, `"baselineState": "unchanged"`) {
		t.Errorf("SARIF output missing unchanged baselineState:\n%s", out)
	}
	if strings.Contains(out, `"baselineState": "new"`) {
		t.Errorf("fully-baselined run still marks results new:\n%s", out)
	}
}
