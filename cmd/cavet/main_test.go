package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seededModule is a synthetic module carrying one instance of each bug
// class cavet exists to catch, marked with // SEED:<analyzer> comments.
// The test derives each expected finding position from its marker, so
// the fixtures can be edited without recounting lines.
var seededModule = map[string]string{
	"go.mod": "module example.com/seeded\n\ngo 1.21\n",

	"machine/machine.go": `package machine

import "context"

type Machine struct{}

func (m *Machine) Run(in []byte) {}

func (m *Machine) RunContext(ctx context.Context, in []byte) error {
	m.Run(in)
	return ctx.Err()
}

type Pool struct{}

func (p *Pool) Get() (*Machine, error) { return &Machine{}, nil }
func (p *Pool) Put(m *Machine)         {}
`,

	// The PR 3 deadlock: session.mu acquired while Server.mu is held.
	"server/server.go": `package server

import "sync"

type Server struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

type session struct {
	mu sync.Mutex
}

func (s *Server) Broadcast() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.mu.Lock() // SEED:lockorder
		sess.mu.Unlock()
	}
}
`,

	"server/serve.go": `package server

import (
	"context"

	"example.com/seeded/machine"
)

func (s *Server) Match(ctx context.Context, p *machine.Pool, in []byte) error {
	m, err := p.Get()
	if err != nil {
		return err
	}
	defer p.Put(m)
	m.Run(in) // SEED:ctxpropagate
	return nil
}

func (s *Server) Lease(p *machine.Pool) {
	m, _ := p.Get() // SEED:leasebalance
	m.Run(nil)
}

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func (s *Server) snapshot(w *wal) {
	w.Append(nil) // SEED:errdrop
}
`,
}

// markerLine returns the 1-based line of the marker in src.
func markerLine(t *testing.T, src, marker string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found", marker)
	return 0
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSeededBugsAreCaught(t *testing.T) {
	dir := writeModule(t, seededModule)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}

	expected := []struct {
		file, marker, analyzer string
	}{
		{"server/server.go", "SEED:lockorder", "lockorder"},
		{"server/serve.go", "SEED:ctxpropagate", "ctxpropagate"},
		{"server/serve.go", "SEED:leasebalance", "leasebalance"},
		{"server/serve.go", "SEED:errdrop", "errdrop"},
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for _, want := range expected {
		line := markerLine(t, seededModule[want.file], "// "+want.marker)
		prefix := fmt.Sprintf("%s:%d:", want.file, line)
		found := false
		for _, out := range lines {
			if strings.HasPrefix(out, prefix) && strings.Contains(out, ": "+want.analyzer+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding at %s\noutput:\n%s", want.analyzer, prefix, &stdout)
		}
	}
	if len(lines) != len(expected) {
		t.Errorf("got %d findings, want %d:\n%s", len(lines), len(expected), &stdout)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/clean\n\ngo 1.21\n",
		"ok.go":  "package clean\n\nfunc OK() int { return 1 }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", &stdout)
	}
}

func TestSuppressedSeedIsSilent(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/quiet\n\ngo 1.21\n",
		"w.go": `package quiet

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func snapshot(w *wal) {
	//cavet:ignore errdrop exercising the suppression path end to end
	w.Append(nil)
}
`,
	}
	dir := writeModule(t, files)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", code, &stdout)
	}
}

func TestMissingReasonIsAFinding(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/noreason\n\ngo 1.21\n",
		"w.go": `package noreason

type wal struct{}

func (w *wal) Append(rec []byte) error { return nil }

func snapshot(w *wal) {
	//cavet:ignore errdrop
	w.Append(nil)
}
`,
	}
	dir := writeModule(t, files)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, &stdout)
	}
	if !strings.Contains(stdout.String(), "cavet: malformed suppression") {
		t.Errorf("missing-reason directive not reported:\n%s", &stdout)
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"lockorder", "leasebalance", "ctxpropagate", "errdrop", "atomicmix", "metricname"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, &stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-C", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("no go.mod: exit = %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("extra args: exit = %d, want 2", code)
	}
}
