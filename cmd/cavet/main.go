// Command cavet runs the module's static-analysis suite
// (internal/analysis) over the source tree and exits non-zero on
// findings. It is the mechanical reviewer for the repo's concurrency
// and resilience invariants:
//
//	go run ./cmd/cavet -tests ./...
//
// Findings print as path:line:col: analyzer: message (or as SARIF
// 2.1.0, flat JSON, or GitHub workflow annotations via -format). Exit
// status is 0 when clean, 1 when there are findings, 2 on usage or
// load errors. With -baseline, grandfathered findings stay visible but
// only NEW findings (not matched by the baseline) fail the run;
// -write-baseline regenerates the grandfather file. Suppress a single
// finding with a justified directive:
//
//	//cavet:ignore <analyzer>[,<analyzer>] <reason>
//
// A directive that suppresses nothing is itself a finding (stale
// suppression), so the ignore inventory cannot rot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cacheautomaton/internal/analysis"
	"cacheautomaton/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files and external _test packages")
	tags := fs.String("tags", "", "comma-separated build tags to satisfy during file selection")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "change to this directory before resolving packages")
	format := fs.String("format", "text", "output format: text, json, sarif, or github")
	baselinePath := fs.String("baseline", "", "baseline file; findings matched by it are reported but non-fatal")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cavet [-tests] [-tags tag,tag] [-C dir] [-format text|json|sarif|github] [-baseline file | -write-baseline file] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "sarif", "github":
	default:
		fmt.Fprintf(stderr, "cavet: unknown -format %q (want text, json, sarif, or github)\n", *format)
		return 2
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// The only supported pattern is the whole module; accept "./..." (or
	// nothing, or a directory whose tree contains go.mod) for go-vet
	// muscle-memory compatibility.
	start := *dir
	if start == "" {
		start = "."
	}
	switch fs.NArg() {
	case 0:
	case 1:
		arg := strings.TrimSuffix(fs.Arg(0), "...")
		arg = strings.TrimSuffix(arg, "/")
		if arg == "" {
			arg = "."
		}
		start = filepath.Join(start, arg)
	default:
		fs.Usage()
		return 2
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "cavet: %v\n", err)
		return 2
	}
	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}
	u, err := analysis.Load(analysis.LoadConfig{
		Dir:          root,
		IncludeTests: *tests,
		BuildTags:    buildTags,
	})
	if err != nil {
		fmt.Fprintf(stderr, "cavet: %v\n", err)
		return 2
	}
	findings := analysis.Run(u, suite.All())
	relPath := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	if *writeBaseline != "" {
		b := analysis.NewBaseline(findings, relPath)
		if err := b.Write(*writeBaseline); err != nil {
			fmt.Fprintf(stderr, "cavet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "cavet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	// Baseline diff: grandfathered findings stay visible but non-fatal.
	baselined := make(map[int]bool)
	newCount := len(findings)
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "cavet: %v\n", err)
			return 2
		}
		_, oldF, stale := b.Diff(findings, relPath)
		oldSet := make(map[string]int)
		for _, f := range oldF {
			oldSet[f.String()]++
		}
		for i, f := range findings {
			if oldSet[f.String()] > 0 {
				oldSet[f.String()]--
				baselined[i] = true
			}
		}
		newCount = len(findings) - len(baselined)
		for _, e := range stale {
			fmt.Fprintf(stderr, "cavet: baseline entry matches nothing (remove it): %s: %s: %s\n", e.File, e.Analyzer, e.Message)
		}
	}
	isOld := func(i int) bool { return baselined[i] }

	var err2 error
	switch *format {
	case "text":
		for i, f := range findings {
			f.Pos.Filename = relPath(f.Pos.Filename)
			suffix := ""
			if isOld(i) {
				suffix = " (baselined)"
			}
			fmt.Fprintln(stdout, f.String()+suffix)
		}
	case "json":
		err2 = analysis.WriteJSON(stdout, findings, isOld, relPath)
	case "sarif":
		err2 = analysis.WriteSARIF(stdout, suite.All(), findings, isOld, relPath)
	case "github":
		err2 = analysis.WriteGitHub(stdout, findings, isOld, relPath)
	}
	if err2 != nil {
		fmt.Fprintf(stderr, "cavet: %v\n", err2)
		return 2
	}
	if newCount > 0 {
		fmt.Fprintf(stderr, "cavet: %d new finding(s)", newCount)
		if len(baselined) > 0 {
			fmt.Fprintf(stderr, " (+%d baselined)", len(baselined))
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if len(baselined) > 0 {
		fmt.Fprintf(stderr, "cavet: %d baselined finding(s), none new\n", len(baselined))
	}
	return 0
}

// findModuleRoot walks from dir upward to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}
