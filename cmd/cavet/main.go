// Command cavet runs the module's static-analysis suite
// (internal/analysis) over the source tree and exits non-zero on
// findings. It is the mechanical reviewer for the repo's concurrency
// and resilience invariants:
//
//	go run ./cmd/cavet -tests ./...
//
// Findings print as path:line:col: analyzer: message. Exit status is 0
// when clean, 1 when there are findings, 2 on usage or load errors.
// Suppress a single finding with a justified directive:
//
//	//cavet:ignore <analyzer>[,<analyzer>] <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cacheautomaton/internal/analysis"
	"cacheautomaton/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files and external _test packages")
	tags := fs.String("tags", "", "comma-separated build tags to satisfy during file selection")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "change to this directory before resolving packages")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cavet [-tests] [-tags tag,tag] [-C dir] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// The only supported pattern is the whole module; accept "./..." (or
	// nothing, or a directory whose tree contains go.mod) for go-vet
	// muscle-memory compatibility.
	start := *dir
	if start == "" {
		start = "."
	}
	switch fs.NArg() {
	case 0:
	case 1:
		arg := strings.TrimSuffix(fs.Arg(0), "...")
		arg = strings.TrimSuffix(arg, "/")
		if arg == "" {
			arg = "."
		}
		start = filepath.Join(start, arg)
	default:
		fs.Usage()
		return 2
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "cavet: %v\n", err)
		return 2
	}
	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}
	u, err := analysis.Load(analysis.LoadConfig{
		Dir:          root,
		IncludeTests: *tests,
		BuildTags:    buildTags,
	})
	if err != nil {
		fmt.Fprintf(stderr, "cavet: %v\n", err)
		return 2
	}
	findings := analysis.Run(u, suite.All())
	for _, f := range findings {
		fmt.Fprintln(stdout, rel(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cavet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// rel renders a finding with the filename relative to the module root,
// keeping output stable across checkouts.
func rel(root string, f analysis.Finding) string {
	if r, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		f.Pos.Filename = r
	}
	return f.String()
}

// findModuleRoot walks from dir upward to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}
