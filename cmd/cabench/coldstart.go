package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	ca "cacheautomaton"
)

// coldStartResult is the JSON report of the cold-start comparison —
// results/compile-cache.json is the committed snapshot.
type coldStartResult struct {
	Rules      int     `json:"rules"`
	States     int     `json:"states"`
	Partitions int     `json:"partitions"`
	BlobKB     int     `json:"blob_kb"`
	CompileMS  float64 `json:"compile_ms"`
	LoadMS     float64 `json:"load_ms"`
	Speedup    float64 `json:"speedup"`
}

// runColdStart measures the compile-cache payoff: compiling a synthetic
// rule set of n patterns from source vs loading its caformat encoding
// (what a cached cad preload does). Both sides are best-of-3 and include
// machine-pool construction, so the ratio is exactly the cold-start
// ratio a daemon sees. Returns an error when the speedup misses
// minSpeedup (CI's cold-start smoke gate).
func runColdStart(w io.Writer, n int, seed int64, minSpeedup float64) error {
	patterns := make([]string, n)
	for i := range patterns {
		// Deterministic, moderately shaped patterns: a literal prefix to
		// keep components small plus classes/alternations so the compiler
		// does real work per rule.
		patterns[i] = fmt.Sprintf("pat%04dx[0-9]{2}(foo|bar)%04d", i, (i*7+int(seed))%10000)
	}

	var (
		a         *ca.Automaton
		compileMS = float64(1 << 60)
	)
	for i := 0; i < 3; i++ {
		start := time.Now()
		got, err := ca.CompileRegex(patterns, ca.Options{Seed: seed})
		if err != nil {
			return fmt.Errorf("compile: %w", err)
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < compileMS {
			compileMS = ms
		}
		a = got
	}

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	blob := buf.Bytes()

	loadMS := float64(1 << 60)
	var loaded *ca.Automaton
	for i := 0; i < 3; i++ {
		start := time.Now()
		got, err := ca.Load(bytes.NewReader(blob), ca.Options{})
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms < loadMS {
			loadMS = ms
		}
		loaded = got
	}
	if loaded.States() != a.States() || loaded.Partitions() != a.Partitions() {
		return fmt.Errorf("load mismatch: %d states/%d partitions vs compiled %d/%d",
			loaded.States(), loaded.Partitions(), a.States(), a.Partitions())
	}

	res := coldStartResult{
		Rules:      n,
		States:     a.States(),
		Partitions: a.Partitions(),
		BlobKB:     len(blob) / 1024,
		CompileMS:  compileMS,
		LoadMS:     loadMS,
		Speedup:    compileMS / loadMS,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if minSpeedup > 0 && res.Speedup < minSpeedup {
		return fmt.Errorf("cold-start speedup %.1fx below the %.1fx floor", res.Speedup, minSpeedup)
	}
	return nil
}
