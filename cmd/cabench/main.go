// Command cabench regenerates the paper's evaluation: every table and
// figure, or a chosen subset, at a configurable benchmark scale and input
// size.
//
// Usage:
//
//	cabench [-scale 1.0] [-size 1048576] [-seed 1] [-bench Snort,Brill]
//	        [-exp all|summary|table1|table2|table3|table4|table5|
//	              figure7|figure8|figure9|figure10|case-er]
//
// The paper's runs use 10 MB inputs and full-size rule sets (-scale 1
// -size 10485760); the trends are stable at much smaller settings, which
// run in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cacheautomaton/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "benchmark scale (1.0 = paper-sized NFAs)")
	size := flag.Int("size", 1<<20, "input stream bytes to simulate")
	seed := flag.Int64("seed", 1, "generator seed")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default all 20)")
	exp := flag.String("exp", "all", "experiment to run: all, summary, table1-5, figure7-10, case-er, replication")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, InputBytes: *size, Seed: *seed}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	r := experiments.NewRunner(cfg)

	type entry struct {
		name string
		fn   func() *experiments.Table
	}
	all := []entry{
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"table5", r.Table5},
		{"figure7", r.Figure7},
		{"figure8", r.Figure8},
		{"figure9", r.Figure9},
		{"figure10", r.Figure10},
		{"case-er", r.CaseStudyER},
		{"replication", r.Replication},
		{"host-baseline", r.HostBaseline},
		{"summary", r.Summary},
	}
	want := strings.ToLower(*exp)
	ran := 0
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		if err := e.fn().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
