// Command cabench regenerates the paper's evaluation: every table and
// figure, or a chosen subset, at a configurable benchmark scale and input
// size.
//
// Usage:
//
//	cabench [-scale 1.0] [-size 1048576] [-seed 1] [-bench Snort,Brill]
//	        [-exp all|summary|table1|table2|table3|table4|table5|
//	              figure7|figure8|figure9|figure10|case-er]
//	        [-parallel 0] [-json]
//	        [-metrics-addr :8080] [-trace-compile]
//
// With -parallel N, the 20 benchmarks × 2 designs pipeline runs are
// prefetched over N workers before any table is rendered (N=0 uses all
// cores; the default 1 keeps the sequential behavior). The rendered
// output is byte-identical to a sequential run — only wall-clock time
// changes. With -json, the machine-readable benchmark report (the
// BENCH_*.json perf-trajectory format, including host-simulator
// throughput per run) is printed instead of the text tables.
//
// The paper's runs use 10 MB inputs and full-size rule sets (-scale 1
// -size 10485760); the trends are stable at much smaller settings, which
// run in seconds.
//
// With -clients N (and -payload, -requests, -rounds, -batch-window,
// -batch-max), cabench switches to the small-request serving
// comparison instead: N concurrent clients fire 1-shot /match requests
// at an in-process server with the request coalescer on and off, and a
// JSON report (min-of-rounds, alternating order) goes to stdout —
// results/batched-serving.json is the committed snapshot.
//
// With -cluster N (and -cluster-sessions, -cluster-chunks), cabench
// runs the cluster failover drill instead: N in-process cad nodes
// behind a router serve concurrent streaming sessions while one node is
// killed and a replacement rejoined mid-stream. The JSON report on
// stdout carries hand-off latency (from ca_cluster_handoff_seconds),
// failure-detection and rejoin times, and a zero-loss verdict against a
// fault-free single-node oracle — results/cluster-failover.json is the
// committed snapshot, and the run exits non-zero on any match loss.
//
// With -metrics-addr, a telemetry endpoint serves /metrics (Prometheus
// text), /debug/vars and /debug/pprof/ while the experiments run — the
// pprof profile endpoint is the intended way to find compiler and
// simulator hot paths under paper-sized load. With -trace-compile, each
// (benchmark, design) compilation prints its phase breakdown to stderr as
// it completes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cacheautomaton/internal/experiments"
	"cacheautomaton/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1.0, "benchmark scale (1.0 = paper-sized NFAs)")
	size := flag.Int("size", 1<<20, "input stream bytes to simulate")
	seed := flag.Int64("seed", 1, "generator seed")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default all 20)")
	exp := flag.String("exp", "all", "experiment to run: all, summary, table1-5, figure7-10, case-er, replication")
	traceCompile := flag.Bool("trace-compile", false, "print each benchmark's compile phase breakdown to stderr")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	parallel := flag.Int("parallel", 1, "prefetch pipeline runs over this many workers (0 = all cores)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable benchmark report instead of text tables")
	clients := flag.Int("clients", 0, "small-request serving mode: this many concurrent clients, batched vs per-request (JSON to stdout)")
	payloadB := flag.Int("payload", 1024, "serving mode: payload bytes per request")
	requests := flag.Int("requests", 1, "serving mode: requests per client per round")
	rounds := flag.Int("rounds", 5, "serving mode: rounds (min-of, alternating order)")
	batchWindow := flag.Duration("batch-window", time.Millisecond, "serving mode: coalescing window for the batched server")
	batchMax := flag.Int("batch-max", 256, "serving mode: max members per batch for the batched server")
	coldstart := flag.Int("coldstart", 0, "cold-start mode: compile this many synthetic rules vs loading their caformat encoding (JSON to stdout)")
	clusterNodes := flag.Int("cluster", 0, "cluster failover drill: this many in-process cad nodes behind a router, one killed and rejoined mid-stream (JSON to stdout)")
	clusterSessions := flag.Int("cluster-sessions", 16, "cluster mode: concurrent streaming sessions")
	clusterChunks := flag.Int("cluster-chunks", 24, "cluster mode: chunks per session")
	minSpeedup := flag.Float64("min-speedup", 0, "cold-start mode: exit non-zero when load is not this many times faster than compile (0 disables)")
	flag.Parse()

	if *clusterNodes > 0 {
		if err := runCluster(os.Stdout, *clusterNodes, *clusterSessions, *clusterChunks, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		return
	}

	if *coldstart > 0 {
		if err := runColdStart(os.Stdout, *coldstart, *seed, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		return
	}

	if *clients > 0 {
		if err := runServing(os.Stdout, *clients, *payloadB, *requests, *rounds, *batchWindow, *batchMax, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, InputBytes: *size, Seed: *seed}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	if *metricsAddr != "" {
		cfg.Observer = telemetry.NewMachineCollector(nil)
		srv, err := telemetry.Serve(*metricsAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}
	if *traceCompile {
		cfg.TraceSink = func(name string, r *telemetry.CompileReport) {
			fmt.Fprint(os.Stderr, r.String())
		}
	}
	r := experiments.NewRunner(cfg)
	if *parallel != 1 {
		r.PrefetchAll(*parallel)
	}
	if *jsonOut {
		if err := r.JSONReport().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		return
	}

	type entry struct {
		name string
		fn   func() *experiments.Table
	}
	all := []entry{
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"table5", r.Table5},
		{"figure7", r.Figure7},
		{"figure8", r.Figure8},
		{"figure9", r.Figure9},
		{"figure10", r.Figure10},
		{"case-er", r.CaseStudyER},
		{"replication", r.Replication},
		{"host-baseline", r.HostBaseline},
		{"summary", r.Summary},
	}
	want := strings.ToLower(*exp)
	ran := 0
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		if err := e.fn().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
