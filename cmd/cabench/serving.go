package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"cacheautomaton/internal/server"
	"cacheautomaton/internal/telemetry"
)

// servingPatterns matches the server package's load-smoke rule set, so
// the out-of-process numbers line up with BenchmarkBatchedServing10k.
var servingPatterns = []string{"needle[0-9]", "hay.{2}stack", "x[abc]+y"}

// servingInput builds a payload salted with pattern hits (~one every
// ~8.75 bytes has a 1-in-4 chance, matching the load smoke's density).
func servingInput(rng *rand.Rand, n int) string {
	const filler = "abcdefghij xyz 0123456789 qrstuvw "
	buf := make([]byte, 0, n+16)
	for len(buf) < n {
		if rng.Intn(4) == 0 {
			switch rng.Intn(3) {
			case 0:
				buf = append(buf, fmt.Sprintf("needle%d", rng.Intn(10))...)
			case 1:
				buf = append(buf, "hay..stack"...)
			default:
				buf = append(buf, "xabcacby"...)
			}
		} else {
			i := rng.Intn(len(filler) - 8)
			buf = append(buf, filler[i:i+8]...)
		}
	}
	return string(buf[:n])
}

// servingReport is the machine-readable result of one batched-vs-
// per-request comparison (results/batched-serving.json).
type servingReport struct {
	Shape struct {
		Clients    int `json:"clients"`
		PayloadB   int `json:"payload_bytes"`
		PerClient  int `json:"requests_per_client"`
		Rounds     int `json:"rounds"`
		TotalReqs  int `json:"total_requests"`
		TotalBytes int `json:"total_bytes"`
	} `json:"shape"`
	Batch struct {
		WindowUS int64 `json:"window_us"`
		Max      int   `json:"max"`
	} `json:"batch"`
	PerRequestSeconds float64 `json:"per_request_seconds"`
	BatchedSeconds    float64 `json:"batched_seconds"`
	PerRequestRPS     float64 `json:"per_request_rps"`
	BatchedRPS        float64 `json:"batched_rps"`
	Speedup           float64 `json:"speedup"`
	BatchedTotal      int64   `json:"batched_requests_total"`
	GeneratedAt       string  `json:"generated_at"`
}

// runServing drives the small-request serving comparison: the same
// gated burst of concurrent 1-shot /match requests against an
// in-process server with the coalescer on and off, min-of-rounds each
// with alternating order (the smoke-test discipline, so a noise spike
// on a shared host cannot decide the verdict), JSON to w.
func runServing(w io.Writer, clients, payloadB, perClient, rounds int, window time.Duration, batchMax int, seed int64) error {
	input := servingInput(rand.New(rand.NewSource(seed)), payloadB)

	mk := func(batched bool) (*server.Server, *telemetry.Registry, error) {
		cfg := server.Config{
			Registry:      telemetry.NewRegistry(),
			TraceRingSize: -1,
			MatchWorkers:  8,
			QueueDepth:    2 * clients,
			QueueWait:     time.Minute,
		}
		if batched {
			cfg.BatchWindow = window
			cfg.BatchMax = batchMax
		}
		s := server.New(cfg)
		if _, err := s.Compile(context.Background(), "serving", server.CompileRequest{Patterns: servingPatterns}); err != nil {
			return nil, nil, err
		}
		return s, cfg.Registry, nil
	}
	batchedSrv, breg, err := mk(true)
	if err != nil {
		return err
	}
	perReqSrv, _, err := mk(false)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = batchedSrv.Shutdown(ctx)
		_ = perReqSrv.Shutdown(ctx)
	}()

	// One gated burst: spawn every client, release them together, time
	// the drain. Spawning is outside the timed region — the measurement
	// is the server absorbing the burst, not goroutine creation.
	burst := func(s *server.Server) (time.Duration, error) {
		start := make(chan struct{})
		errs := make(chan error, clients)
		var ready, done sync.WaitGroup
		ready.Add(clients)
		done.Add(clients)
		for c := 0; c < clients; c++ {
			go func() {
				defer done.Done()
				ready.Done()
				<-start
				for r := 0; r < perClient; r++ {
					if _, err := s.Match(context.Background(), server.MatchRequest{Ruleset: "serving", Input: input}); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		ready.Wait()
		t0 := time.Now()
		close(start)
		done.Wait()
		el := time.Since(t0)
		close(errs)
		for err := range errs {
			return 0, err
		}
		return el, nil
	}

	// Warmup, then min-of-rounds with alternating order.
	if _, err := burst(batchedSrv); err != nil {
		return err
	}
	if _, err := burst(perReqSrv); err != nil {
		return err
	}
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var bat, per time.Duration
	for r := 0; r < rounds; r++ {
		order := []*server.Server{batchedSrv, perReqSrv}
		if r%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, s := range order {
			d, err := burst(s)
			if err != nil {
				return err
			}
			if s == batchedSrv {
				bat = best(bat, d)
			} else {
				per = best(per, d)
			}
		}
	}

	var rep servingReport
	rep.Shape.Clients = clients
	rep.Shape.PayloadB = payloadB
	rep.Shape.PerClient = perClient
	rep.Shape.Rounds = rounds
	rep.Shape.TotalReqs = clients * perClient
	rep.Shape.TotalBytes = clients * perClient * payloadB
	rep.Batch.WindowUS = window.Microseconds()
	rep.Batch.Max = batchMax
	rep.PerRequestSeconds = per.Seconds()
	rep.BatchedSeconds = bat.Seconds()
	rep.PerRequestRPS = float64(clients*perClient) / per.Seconds()
	rep.BatchedRPS = float64(clients*perClient) / bat.Seconds()
	rep.Speedup = per.Seconds() / bat.Seconds()
	rep.BatchedTotal = batchedCounter(breg)
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// batchedCounter reads ca_server_batched_requests_total back out of the
// batched server's registry, proving the comparison actually coalesced.
func batchedCounter(reg *telemetry.Registry) int64 {
	col := telemetry.NewServerCollector(reg) // same names → same counters
	return col.BatchedRequests.Value()
}
