package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cacheautomaton/internal/cluster"
	"cacheautomaton/internal/retry"
	"cacheautomaton/internal/server"
	"cacheautomaton/internal/telemetry"
)

// clusterReport is the machine-readable result of one failover drill
// (results/cluster-failover.json): an N-node in-process cluster under
// streaming load has one node killed mid-stream and a replacement
// rejoined, and every stream is reconciled bit-identically against a
// fault-free single-node oracle.
type clusterReport struct {
	Shape struct {
		Nodes       int `json:"nodes"`
		Sessions    int `json:"sessions"`
		ChunksEach  int `json:"chunks_per_session"`
		ChunkBytes  int `json:"chunk_bytes"`
		TotalBytes  int `json:"total_bytes"`
		TotalChunks int `json:"total_chunks"`
	} `json:"shape"`
	Failovers          int64   `json:"failovers"`
	HandoffMeanSeconds float64 `json:"handoff_mean_seconds"`
	HandoffCount       int64   `json:"handoff_count"`
	DetectSeconds      float64 `json:"detect_seconds"`
	RejoinSeconds      float64 `json:"rejoin_seconds"`
	CheckpointsShipped int64   `json:"checkpoints_shipped"`
	ArtifactsShipped   int64   `json:"artifacts_shipped"`
	TotalMatches       int     `json:"total_matches"`
	OracleMatches      int     `json:"oracle_matches"`
	ZeroLoss           bool    `json:"zero_loss"`
	DrillSeconds       float64 `json:"drill_seconds"`
	GeneratedAt        string  `json:"generated_at"`
}

// clusterChunk builds session s's chunk j, deterministic so the oracle
// replays the identical stream.
func clusterChunk(s, j int, n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed ^ int64(s)<<20 ^ int64(j)))
	return servingInput(rng, n)
}

// runCluster drives the failover drill: nodes cad nodes behind a
// router, sessions streaming clients, one node SIGKILLed mid-stream and
// a replacement rejoined under load. Hand-off latency comes from the
// router's own ca_cluster_handoff_seconds histogram; detect and rejoin
// times are wall-clock around the membership transitions; zero loss is
// proven by comparing every session's full match set against a
// fault-free single-node oracle fed the same bytes.
func runCluster(w io.Writer, nodes, sessions, chunks int, seed int64) error {
	if nodes < 2 {
		return fmt.Errorf("-cluster needs at least 2 nodes, got %d", nodes)
	}
	const chunkBytes = 512
	reg := telemetry.NewRegistry()
	r := cluster.NewRouter(cluster.Config{
		Registry:          reg,
		HeartbeatInterval: 50 * time.Millisecond,
		HedgeDelay:        20 * time.Millisecond,
		RPC:               retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, AttemptTimeout: 5 * time.Second},
	})
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = r.Shutdown(sctx)
	}()

	nodeCfg := func() server.Config {
		return server.Config{Registry: telemetry.NewRegistry(), TraceRingSize: -1, MaxSessions: 4 * sessions}
	}
	locals := make(map[string]*cluster.LocalNode, nodes)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, n := range locals {
			_ = n.Stop(sctx)
		}
	}()
	for i := 1; i <= nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		n, err := cluster.StartLocalNode(id, nodeCfg())
		if err != nil {
			return err
		}
		locals[id] = n
		if err := r.AddNode(ctx, id, n.URL); err != nil {
			return err
		}
	}

	if _, err := r.Compile(ctx, "drill", server.CompileRequest{Patterns: servingPatterns}); err != nil {
		return err
	}

	// The oracle: one fault-free server fed the identical streams.
	oracle := server.New(nodeCfg())
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = oracle.Shutdown(sctx)
	}()
	if _, err := oracle.Compile(ctx, "drill", server.CompileRequest{Patterns: servingPatterns}); err != nil {
		return err
	}
	oracleMatches := 0
	for s := 0; s < sessions; s++ {
		info, err := oracle.OpenSession(ctx, server.OpenSessionRequest{Ruleset: "drill"})
		if err != nil {
			return err
		}
		for j := 0; j < chunks; j++ {
			fr, err := oracle.Feed(ctx, info.Session, server.FeedRequest{Chunk: clusterChunk(s, j, chunkBytes, seed)})
			if err != nil {
				return err
			}
			oracleMatches += len(fr.Matches)
		}
	}

	// The drill: every client streams its chunks through the router,
	// retrying shed (no-quorum / overload) responses — the exactly-once
	// contract means a retried shed never double-scans.
	start := time.Now()
	var fed atomic.Int64
	var matches atomic.Int64
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			info, err := r.OpenSession(ctx, server.OpenSessionRequest{Ruleset: "drill"})
			if err != nil {
				errs <- fmt.Errorf("session %d open: %w", s, err)
				return
			}
			for j := 0; j < chunks; j++ {
				chunk := clusterChunk(s, j, chunkBytes, seed)
				deadline := time.Now().Add(30 * time.Second)
				for {
					//cavet:ignore singleattempt drill driver rides Router.Feed, which re-homes the session via checkpoint failover before each attempt
					fr, err := r.Feed(ctx, info.Session, server.FeedRequest{Chunk: chunk})
					if err == nil {
						matches.Add(int64(len(fr.Matches)))
						break
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("session %d chunk %d: %w", s, j, err)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
				fed.Add(1)
			}
		}(s)
	}

	// Kill one node once the load is genuinely mid-stream, wait for the
	// router to declare it dead, then rejoin a replacement under the
	// same id and wait for it to serve again.
	total := int64(sessions * chunks)
	for fed.Load() < total/3 {
		time.Sleep(5 * time.Millisecond)
	}
	victim := fmt.Sprintf("n%d", nodes)
	killAt := time.Now()
	locals[victim].Kill()
	waitState := func(id, state string) error {
		for deadline := time.Now().Add(30 * time.Second); ; {
			for _, tn := range r.ClusterTable().Nodes {
				if tn.ID == id && tn.State == state {
					return nil
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %s never became %s", id, state)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := waitState(victim, "dead"); err != nil {
		return err
	}
	detect := time.Since(killAt)

	rejoinAt := time.Now()
	repl, err := cluster.StartLocalNode(victim, nodeCfg())
	if err != nil {
		return err
	}
	locals[victim] = repl
	if err := r.AddNode(ctx, victim, repl.URL); err != nil {
		return err
	}
	if err := waitState(victim, "alive"); err != nil {
		return err
	}
	rejoin := time.Since(rejoinAt)

	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	drill := time.Since(start)

	col := telemetry.NewClusterCollector(reg) // same names → same metrics
	var rep clusterReport
	rep.Shape.Nodes = nodes
	rep.Shape.Sessions = sessions
	rep.Shape.ChunksEach = chunks
	rep.Shape.ChunkBytes = chunkBytes
	rep.Shape.TotalChunks = sessions * chunks
	rep.Shape.TotalBytes = sessions * chunks * chunkBytes
	rep.Failovers = col.Failovers.Value()
	rep.HandoffMeanSeconds = col.HandoffSeconds.Mean()
	rep.HandoffCount = col.HandoffSeconds.Count()
	rep.DetectSeconds = detect.Seconds()
	rep.RejoinSeconds = rejoin.Seconds()
	rep.CheckpointsShipped = col.CheckpointsShipped.Value()
	rep.ArtifactsShipped = col.ArtifactsShipped.Value()
	rep.TotalMatches = int(matches.Load())
	rep.OracleMatches = oracleMatches
	rep.ZeroLoss = rep.TotalMatches == rep.OracleMatches
	rep.DrillSeconds = drill.Seconds()
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	if !rep.ZeroLoss {
		return fmt.Errorf("match loss: cluster %d != oracle %d", rep.TotalMatches, rep.OracleMatches)
	}
	return nil
}
