// Benchmark harness: one testing.B benchmark per paper table/figure.
// Each bench regenerates its artifact through internal/experiments and
// reports the headline modeled metric via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Scale/size default to a fast setting (0.1× rule sets, 32 KB streams);
// set CA_BENCH_SCALE=1.0 and CA_BENCH_BYTES=10485760 for paper-sized runs.
package cacheautomaton

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"cacheautomaton/internal/apmodel"
	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/baseline"
	"cacheautomaton/internal/experiments"
	"cacheautomaton/internal/workload"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

func envFloat(key string, def float64) float64 {
	if v := os.Getenv(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// runner returns the shared (cached) experiment runner; the first bench
// that needs a given (benchmark, design) pipeline pays for it.
func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.Config{
			Scale:      envFloat("CA_BENCH_SCALE", 0.1),
			InputBytes: int(envFloat("CA_BENCH_BYTES", 32*1024)),
			Seed:       1,
		})
	})
	return benchRunner
}

func renderTo(b *testing.B, t *experiments.Table) {
	b.Helper()
	if err := t.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1 regenerates benchmark characteristics (states, CCs,
// largest CC, avg active states) for all 20 workloads under both designs.
func BenchmarkTable1(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Table1())
	}
}

// BenchmarkTable2 regenerates the switch-parameter table.
func BenchmarkTable2(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Table2())
	}
}

// BenchmarkTable3 regenerates pipeline delays; reports the two operating
// frequencies.
func BenchmarkTable3(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Table3())
	}
	var o arch.TimingOptions
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).OperatingFrequencyGHz(o), "CA_P-GHz")
	b.ReportMetric(arch.NewDesign(arch.SpaceOpt).OperatingFrequencyGHz(o), "CA_S-GHz")
}

// BenchmarkTable4 regenerates the sense-amp-cycling / H-Bus ablations.
func BenchmarkTable4(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Table4())
	}
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).OperatingFrequencyGHz(arch.TimingOptions{NoSACycling: true}), "CA_P-noSA-GHz")
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).OperatingFrequencyGHz(arch.TimingOptions{HBus: true}), "CA_P-HBus-GHz")
}

// BenchmarkTable5 regenerates the HARE/UAP comparison on Dotstar09.
func BenchmarkTable5(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Table5())
	}
	var o arch.TimingOptions
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).ThroughputGbps(o)/apmodel.HARE().ThroughputGbps, "CA_P-vs-HARE")
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).ThroughputGbps(o)/apmodel.UAP().ThroughputGbps, "CA_P-vs-UAP")
}

// BenchmarkFigure7 regenerates the throughput comparison; reports the AP
// speedups (paper: 15× and 9×).
func BenchmarkFigure7(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Figure7())
	}
	var o arch.TimingOptions
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).ThroughputGbps(o)/apmodel.APThroughputGbps, "CA_P-vs-AP")
	b.ReportMetric(arch.NewDesign(arch.SpaceOpt).ThroughputGbps(o)/apmodel.APThroughputGbps, "CA_S-vs-AP")
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).ThroughputGbps(o)/apmodel.CPUThroughputGbps(), "CA_P-vs-CPU")
}

// BenchmarkFigure8 regenerates cache utilization; reports the averages
// (paper: 1.2 MB and 0.725 MB at scale 1.0).
func BenchmarkFigure8(b *testing.B) {
	r := runner()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = r.Figure8()
		renderTo(b, tab)
	}
	if len(tab.Rows) > 0 {
		last := tab.Rows[len(tab.Rows)-1]
		if last[0] == "AVERAGE" {
			if v, err := strconv.ParseFloat(last[1], 64); err == nil {
				b.ReportMetric(v, "CA_P-avgMB")
			}
			if v, err := strconv.ParseFloat(last[2], 64); err == nil {
				b.ReportMetric(v, "CA_S-avgMB")
			}
		}
	}
}

// BenchmarkFigure9 regenerates energy/power; reports the CA_S average
// energy (paper: 2.3 nJ/symbol) and the Ideal-AP ratio (paper: ~3×).
func BenchmarkFigure9(b *testing.B) {
	r := runner()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = r.Figure9()
		renderTo(b, tab)
	}
	if len(tab.Rows) > 0 {
		last := tab.Rows[len(tab.Rows)-1]
		if last[0] == "AVERAGE" {
			caS, err1 := strconv.ParseFloat(last[2], 64)
			ap, err2 := strconv.ParseFloat(last[3], 64)
			if err1 == nil {
				b.ReportMetric(caS, "CA_S-nJ/sym")
			}
			if err1 == nil && err2 == nil && caS > 0 {
				b.ReportMetric(ap/caS, "IdealAP/CA_S")
			}
		}
	}
}

// BenchmarkFigure10 regenerates the design-space points.
func BenchmarkFigure10(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		renderTo(b, r.Figure10())
	}
	b.ReportMetric(arch.NewDesign(arch.PerfOpt).Reachability(), "CA_P-reach")
	b.ReportMetric(arch.NewDesign(arch.SpaceOpt).Reachability(), "CA_S-reach")
}

// BenchmarkPipelineSnortPerf measures the cold end-to-end pipeline
// (build → map → simulate) for one representative benchmark.
func BenchmarkPipelineSnortPerf(b *testing.B) {
	spec := workload.ByName("Snort")
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Config{Scale: 0.05, InputBytes: 16 * 1024, Seed: int64(i + 1)})
		run := r.Get(spec, arch.PerfOpt)
		if run.Err != nil {
			b.Fatal(run.Err)
		}
	}
}

// BenchmarkHostSimulatorThroughput measures the functional simulator's
// host-side speed (bytes/s) and reports the modeled hardware line rate for
// contrast.
func BenchmarkHostSimulatorThroughput(b *testing.B) {
	a, err := CompileRegex([]string{"needle[0-9]{4}", "other.*thing"}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]byte, 1<<20)
	for i := range in {
		in[i] = byte(i * 131)
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Count(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.ThroughputGbps(), "modeled-Gb/s")
}

// BenchmarkRunParallelThroughput measures the parallel engine's host
// throughput across shard counts on the same workload as
// BenchmarkHostSimulatorThroughput; speedup tracks GOMAXPROCS.
func BenchmarkRunParallelThroughput(b *testing.B) {
	a, err := CompileRegex([]string{"needle[0-9]{4}", "other.*thing"}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]byte, 1<<20)
	for i := range in {
		in[i] = byte(i * 131)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := a.RunParallel(in, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCPUBaselineNFAEngine measures the software active-set engine —
// the compute-centric comparison point.
func BenchmarkCPUBaselineNFAEngine(b *testing.B) {
	spec := workload.ByName("Bro217")
	n, err := spec.Build(1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	e := baseline.NewNFAEngine(n)
	in := spec.Input(1, 1<<20)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Run(in, false)
	}
}
