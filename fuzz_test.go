package cacheautomaton

import (
	"bytes"
	"sync"
	"testing"
)

var fuzzAutomata struct {
	once sync.Once
	as   []*Automaton
	err  error
}

// fuzzTargets compiles a small spread of rule sets once per fuzz worker
// process: overlapping literals, unbounded repetition, classes, anchors,
// and alternation — the shapes whose in-flight state is easiest to tear
// at a chunk boundary.
func fuzzTargets(t *testing.T) []*Automaton {
	t.Helper()
	f := &fuzzAutomata
	f.once.Do(func() {
		for _, patterns := range [][]string{
			{"cat", "dog.*food"},
			{"aa", "aaaa", "a{2,3}"},
			{"ab|b", "(ab)+c?"},
			{"^x[0-9]+y", "[^z]{3}z"},
		} {
			a, err := CompileRegex(patterns, Options{})
			if err != nil {
				f.err = err
				return
			}
			f.as = append(f.as, a)
		}
	})
	if f.err != nil {
		t.Fatal(f.err)
	}
	return f.as
}

// FuzzStreamChunking: feeding an input through a Stream in arbitrary
// chunks — boundaries chosen by the fuzzer, including empty chunks and
// splits inside a partial match — must produce the exact match sequence
// of a one-shot Run, and a suspend/resume round-trip at one of those
// boundaries must not perturb it.
func FuzzStreamChunking(f *testing.F) {
	f.Add([]byte("the cat ate dog brand food"), []byte{3, 0, 7}, byte(0), byte(1))
	f.Add([]byte("aaaaaa"), []byte{1, 1, 1, 1, 1, 1}, byte(1), byte(3))
	f.Add([]byte("abababc"), []byte{2, 3}, byte(2), byte(0))
	f.Add([]byte("x123y x9y"), []byte{5}, byte(3), byte(200))
	f.Fuzz(func(t *testing.T, input, cuts []byte, sel, suspendAt byte) {
		if len(input) > 1<<16 {
			input = input[:1<<16]
		}
		a := fuzzTargets(t)[int(sel)%4]
		want, _, err := a.Run(input)
		if err != nil {
			t.Fatal(err)
		}

		s, err := a.Stream()
		if err != nil {
			t.Fatal(err)
		}
		defer func() { s.Close() }()
		var got []Match
		pos, chunk := 0, 0
		for _, c := range cuts {
			n := int(c)
			if pos+n > len(input) {
				n = len(input) - pos
			}
			got = append(got, s.Feed(input[pos:pos+n])...)
			pos += n
			chunk++
			if chunk == int(suspendAt)%8+1 {
				var state bytes.Buffer
				if err := s.Suspend(&state); err != nil {
					t.Fatal(err)
				}
				s.Close()
				if s, err = a.ResumeStream(&state); err != nil {
					t.Fatal(err)
				}
			}
		}
		got = append(got, s.Feed(input[pos:])...)

		if len(got) != len(want) {
			t.Fatalf("chunked stream: %d matches, one-shot Run: %d\ninput=%q cuts=%v\ngot=%v\nwant=%v",
				len(got), len(want), input, cuts, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("match %d: chunked %+v, one-shot %+v (input=%q cuts=%v)", i, got[i], want[i], input, cuts)
			}
		}
	})
}
