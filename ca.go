// Package cacheautomaton is a software reproduction of the Cache Automaton
// (Subramaniyan et al., MICRO-50 2017): an in-cache accelerator for
// Non-deterministic Finite Automata. It bundles a regex/ANML front-end, the
// paper's compiler (connected-component packing + METIS-style k-way
// partitioning under switch-connectivity budgets), a cycle-level functional
// simulator of the mapped LLC design, and the calibrated timing/energy/area
// model of the hardware.
//
// Quick start:
//
//	a, err := cacheautomaton.CompileRegex([]string{"cat", "dog.*food"}, cacheautomaton.Options{})
//	if err != nil { ... }
//	matches, stats, err := a.Run([]byte("the cat ate dog food"))
//
// Every match reports the rule index and the input offset of its last
// symbol. Stats carries the modeled hardware metrics: cache footprint,
// operating frequency, energy per symbol, and average power for the
// simulated stream.
package cacheautomaton

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cacheautomaton/internal/anml"
	"cacheautomaton/internal/arch"
	"cacheautomaton/internal/caformat"
	"cacheautomaton/internal/machine"
	"cacheautomaton/internal/mapper"
	"cacheautomaton/internal/nfa"
	"cacheautomaton/internal/regexc"
	"cacheautomaton/internal/rulefmt"
	"cacheautomaton/internal/telemetry"
	"cacheautomaton/internal/workload"
)

// Design selects which of the paper's two design points to target.
type Design int

const (
	// Performance is CA_P: 2 GHz, one connected component per partition,
	// within-way connectivity (paper §3.1).
	Performance Design = iota
	// Space is CA_S: 1.2 GHz, prefix/suffix-merged NFA, cross-way
	// G-switches; ~40% less cache at 60% of the throughput.
	Space
)

func (d Design) String() string {
	if d == Performance {
		return "CA_P"
	}
	return "CA_S"
}

func (d Design) kind() arch.DesignKind {
	if d == Performance {
		return arch.PerfOpt
	}
	return arch.SpaceOpt
}

// Options configure compilation and mapping.
type Options struct {
	// Design picks CA_P (default) or CA_S.
	Design Design
	// CaseInsensitive folds ASCII case in regex patterns.
	CaseInsensitive bool
	// DotExcludesNewline makes '.' skip '\n' in regex patterns.
	DotExcludesNewline bool
	// MaxRepeat caps {m,n} counted repetitions (default 256).
	MaxRepeat int
	// Seed makes the graph partitioner deterministic (default 0).
	Seed int64
	// KeepPerPatternStates disables state merging for the Space design
	// (merging is what makes CA_S space-optimized, so leave this false
	// unless you need state-to-pattern attribution).
	KeepPerPatternStates bool
	// RunObserver, when non-nil, receives run telemetry from every machine
	// this automaton creates (Run, Count, Leases and Streams). The hook is
	// nil-checked on the symbol hot path, so leaving it nil costs one
	// branch per cycle and no allocation. Because an Automaton may be used
	// from many goroutines (each leasing its own machine), the observer's
	// methods must be safe for concurrent use; telemetry.MachineCollector
	// is (all its instruments are atomic).
	RunObserver RunObserver
}

// RunObserver is the run-telemetry hook: implementations receive per-cycle
// activity, report events, output-buffer interrupts, and end-of-run
// summaries. internal/telemetry's MachineCollector (as used by carun's
// -metrics-addr flag) satisfies it; external implementations only need
// these four methods.
type RunObserver interface {
	// ObserveCycle reports one simulated cycle: the enabled-state count,
	// the number of partitions with at least one enabled state, and the
	// active G-Switch-1/-4 source-signal counts.
	ObserveCycle(activeStates, activePartitions, g1, g4 int64)
	// ObserveMatches reports the match count of a reporting cycle.
	ObserveMatches(n int64)
	// ObserveOverflow reports one output-buffer interrupt.
	ObserveOverflow()
	// ObserveRun reports a completed Run: symbols processed, host
	// wall-clock seconds, and the output-buffer high-water mark.
	ObserveRun(symbols int64, seconds float64, outputBufferPeak int64)
}

// Match is one report event.
type Match struct {
	// Offset is the input offset of the symbol completing the match.
	Offset int64
	// Pattern is the rule index (the regex's position in the compiled
	// set, or the ANML reportcode).
	Pattern int
}

// Stats summarizes a Run with the paper's metrics.
type Stats struct {
	// Cycles is the number of symbols processed (one per cycle).
	Cycles int64
	// Matches is the total report count.
	Matches int64
	// AvgActiveStates is the mean dynamically-active state count
	// (Table 1's activity metric).
	AvgActiveStates float64
	// EnergyPJPerSymbol and AvgPowerW come from the calibrated energy
	// model and the measured per-cycle activity (Fig. 9).
	EnergyPJPerSymbol float64
	AvgPowerW         float64
	// ModeledSeconds is the time the hardware would take: cycles at the
	// design's operating frequency.
	ModeledSeconds float64
}

// Automaton is a compiled, mapped, executable Cache Automaton.
//
// Concurrency contract: an Automaton is safe for concurrent use by
// multiple goroutines. The compiled artifacts (design, NFA, placement)
// are immutable after compilation; every execution entry point leases a
// private simulator machine from an internal pool for the duration of the
// call, so concurrent Run/RunParallel/Lease/Stream callers never share
// mutable machine state. Count is the one serialized path: it reuses a
// single cached non-collecting machine under a mutex, so concurrent Count
// calls execute one at a time (deterministically — they queue, they do
// not race). Streams and Leases are themselves single-owner: one Stream
// or Lease must not be used from two goroutines at once, but any number
// of them may run side by side.
type Automaton struct {
	design    *arch.Design
	nfa       *nfa.NFA
	placement *mapper.Placement
	report    *telemetry.CompileReport
	observer  RunObserver
	// runPool leases the collecting machines behind Run, Lease and Stream.
	runPool *machine.Pool
	// shardPool leases the replicated machines behind RunParallel
	// (collecting, no observer: RunSharded delivers no per-cycle
	// telemetry).
	shardPool *machine.Pool
	// countMachine is the cached non-collecting machine behind Count,
	// guarded by countMu.
	countMu      sync.Mutex
	countMachine *machine.Machine
	// sigNames carries auxiliary per-report-code names (today: ClamAV
	// signature names indexed by Match.Pattern) so Save/Load round-trips
	// everything a server needs to re-serve the rule set.
	sigNames []string
}

// CompileRegex compiles a rule set (one pattern per entry; matches report
// the pattern index) and maps it onto the selected design.
func CompileRegex(patterns []string, opts Options) (*Automaton, error) {
	tr := telemetry.NewTrace("compile-regex")
	n, err := regexc.CompileSet(patterns, regexc.Options{
		CaseInsensitive:    opts.CaseInsensitive,
		DotExcludesNewline: opts.DotExcludesNewline,
		MaxRepeat:          opts.MaxRepeat,
		Trace:              tr,
	})
	if err != nil {
		return nil, err
	}
	return fromNFA(n, opts, tr)
}

// CompileANML reads an ANML automata network (the Automata Processor's
// XML interchange format) and maps it.
func CompileANML(r io.Reader, opts Options) (*Automaton, error) {
	tr := telemetry.NewTrace("compile-anml")
	sp := tr.StartPhase("anml.read")
	net, err := anml.Read(r)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("states", int64(net.NFA.NumStates()))
	sp.End()
	return fromNFA(net.NFA, opts, tr)
}

func fromNFA(n *nfa.NFA, opts Options, tr *telemetry.Trace) (*Automaton, error) {
	design := arch.NewDesign(opts.Design.kind())
	cfg := mapper.Config{
		Design:         design,
		Seed:           opts.Seed,
		AllowChainedG4: opts.Design == Space,
		Trace:          tr,
	}
	var pl *mapper.Placement
	var err error
	if opts.Design == Space && !opts.KeepPerPatternStates {
		// CA_S: state-merge with the compiler's back-off ladder.
		pl, _, err = mapper.MapOptimized(n, cfg)
	} else {
		pl, err = mapper.Map(n, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	return newAutomaton(pl, opts, tr)
}

// newAutomaton builds the executable wrapper (machine pools, report)
// around a verified placement — the shared tail of every compile path and
// of Load.
func newAutomaton(pl *mapper.Placement, opts Options, tr *telemetry.Trace) (*Automaton, error) {
	sb := tr.StartPhase("machine.build")
	runPool := machine.NewPool(pl, machine.Options{CollectMatches: true, Observer: opts.RunObserver}, 0)
	// Build (and pool) one machine eagerly so placement problems surface at
	// compile time, not on the first Run.
	m, err := runPool.Get()
	if err != nil {
		return nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	runPool.Put(m)
	sb.SetAttr("partitions", int64(pl.NumPartitions()))
	sb.End()
	return &Automaton{
		design:    pl.Design,
		nfa:       pl.NFA,
		placement: pl,
		report:    tr.Report(),
		observer:  opts.RunObserver,
		runPool:   runPool,
		shardPool: machine.NewPool(pl, machine.Options{CollectMatches: true}, 0),
	}, nil
}

// Save serializes the compiled automaton (placement plus auxiliary
// signature names) in the caformat container. Load(Save(a)) serves
// bit-identical match sets: state IDs, report codes and partition layout
// are preserved exactly. The encoding is deterministic, which is what
// makes the content-addressed compile cache stable.
func Save(a *Automaton, w io.Writer) error {
	return caformat.Encode(w, a.placement, a.sigNames)
}

// Save serializes the automaton to w; see the package-level Save.
func (a *Automaton) Save(w io.Writer) error { return Save(a, w) }

// Load reconstructs an automaton from a caformat container written by
// Save. The artifact is self-describing: the design (CA_P/CA_S) and
// placement come from the file, so opts.Design and the compile-shaping
// options are ignored — only runtime options (RunObserver) apply.
// Corrupted input returns a structured error, never a panic.
func Load(r io.Reader, opts Options) (*Automaton, error) {
	tr := telemetry.NewTrace("load-caformat")
	sp := tr.StartPhase("caformat.decode")
	pl, names, err := caformat.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	sp.SetAttr("states", int64(pl.NFA.NumStates()))
	sp.SetAttr("partitions", int64(pl.NumPartitions()))
	sp.End()
	a, err := newAutomaton(pl, opts, tr)
	if err != nil {
		return nil, err
	}
	a.sigNames = names
	return a, nil
}

// SignatureNames returns the auxiliary per-report-code names the
// automaton was compiled with (ClamAV signature names), or nil. The
// returned slice must not be mutated.
func (a *Automaton) SignatureNames() []string { return a.sigNames }

// CompilePhase is one timed phase of the compile pipeline.
type CompilePhase struct {
	// Name identifies the phase ("regexc.parse", "map.large",
	// "backoff.full-merge", "machine.build", …).
	Name string
	// Duration is the phase's wall time.
	Duration time.Duration
	// Stats carries phase counters: state counts in/out, partition counts,
	// split retries, budget-repair moves, back-off outcomes.
	Stats map[string]int64
}

// CompileReport is the phase breakdown of the compilation that produced an
// Automaton — the compiler's pipeline made visible: regex parse, Glushkov
// construction, connected-component packing, k-way splitting with retries,
// budget repair, the CA_S back-off ladder, and machine construction.
type CompileReport struct {
	// Name is the entry point ("compile-regex", "compile-anml").
	Name string
	// Total is the end-to-end compile wall time.
	Total time.Duration
	// Phases lists the recorded phases in execution order.
	Phases []CompilePhase
}

// String renders the report as an aligned per-phase breakdown.
func (r *CompileReport) String() string {
	if r == nil {
		return "(no compile report)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %9.3fms total\n", r.Name, float64(r.Total)/1e6)
	for _, p := range r.Phases {
		keys := make([]string, 0, len(p.Stats))
		for k := range p.Stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var stats strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&stats, " %s=%d", k, p.Stats[k])
		}
		fmt.Fprintf(&b, "  %-28s %9.3fms%s\n", p.Name, float64(p.Duration)/1e6, stats.String())
	}
	return b.String()
}

// CompileReport returns the phase breakdown recorded while this automaton
// was compiled. It is always available; recording costs a few small
// allocations per compile.
func (a *Automaton) CompileReport() *CompileReport {
	if a.report == nil {
		return nil
	}
	out := &CompileReport{Name: a.report.Name, Total: a.report.Total}
	for _, p := range a.report.Phases {
		cp := CompilePhase{Name: p.Name, Duration: p.Duration, Stats: make(map[string]int64, len(p.Attrs))}
		for _, at := range p.Attrs {
			cp.Stats[at.Key] = at.Value
		}
		out.Phases = append(out.Phases, cp)
	}
	return out
}

// statsFrom converts a machine result into the paper's modeled metrics.
func (a *Automaton) statsFrom(res *machine.Result) *Stats {
	act := res.Activity.AvgActivity()
	freqGHz := a.design.OperatingFrequencyGHz(arch.TimingOptions{})
	return &Stats{
		Cycles:            res.Activity.Cycles,
		Matches:           res.MatchCount,
		AvgActiveStates:   res.Activity.AvgActiveStates(),
		EnergyPJPerSymbol: a.design.SymbolEnergyPJ(act),
		AvgPowerW:         a.design.PowerW(act),
		ModeledSeconds:    float64(res.Activity.Cycles) / (freqGHz * 1e9),
	}
}

// matchesFrom converts machine report events to the exported form.
func matchesFrom(ms []machine.Match) []Match {
	matches := make([]Match, len(ms))
	for i, m := range ms {
		matches[i] = Match{Offset: m.Offset, Pattern: int(m.Code)}
	}
	return matches
}

// Run processes input from offset 0 and returns the matches with the
// modeled hardware statistics. Each call leases a private machine, so Run
// is safe to call from any number of goroutines concurrently.
func (a *Automaton) Run(input []byte) ([]Match, *Stats, error) {
	l, err := a.Lease()
	if err != nil {
		return nil, nil, err
	}
	defer l.Release()
	return l.Run(input)
}

// RunContext is Run with deadline-aware cancellation (see
// Lease.RunContext). A ctx that can never be canceled costs nothing.
// When ctx carries a telemetry.ReqTrace, the machine checkout and the
// scan are recorded as "lease" and "run" stage spans.
func (a *Automaton) RunContext(ctx context.Context, input []byte) ([]Match, *Stats, error) {
	l, err := a.LeaseContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer l.Release()
	return l.RunContext(ctx, input)
}

// Lease checks a private machine out of the automaton's pool for repeated
// one-shot runs without per-call pool traffic (a server handling a burst
// of requests on one connection, for example). The lease is single-owner:
// use it from one goroutine, and Release it when done — an unreleased
// lease is not an error, but its machine is garbage instead of being
// recycled. Any number of leases may be live at once.
func (a *Automaton) Lease() (*Lease, error) {
	m, err := a.runPool.Get()
	if err != nil {
		return nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	return &Lease{a: a, m: m}, nil
}

// LeaseContext is Lease with the request-scoped flight recorder threaded
// through: a telemetry.ReqTrace carried by ctx records the checkout as a
// "lease" stage span. With no trace in ctx it is exactly Lease.
func (a *Automaton) LeaseContext(ctx context.Context) (*Lease, error) {
	m, err := a.runPool.GetContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	return &Lease{a: a, m: m}, nil
}

// Lease is an exclusively-held executable instance of an Automaton: the
// per-session machine checkout behind Run, Stream and the serving layer.
type Lease struct {
	a *Automaton
	m *machine.Machine
}

// Run resets the leased machine, processes input from offset 0, and
// returns the matches with the modeled hardware statistics.
func (l *Lease) Run(input []byte) ([]Match, *Stats, error) {
	if l.m == nil {
		return nil, nil, fmt.Errorf("cacheautomaton: use of released lease")
	}
	l.m.Reset()
	res := l.m.Run(input)
	return matchesFrom(res.Matches), l.a.statsFrom(res), nil
}

// RunContext is Run with deadline-aware cancellation: the scan checks
// ctx between machine.ContextCheckBytes sub-batches, so a canceled or
// timed-out request stops within one sub-batch instead of scanning its
// whole input. On cancellation the partial result is discarded and
// ctx's error is returned (the run is one-shot; nothing is lost).
func (l *Lease) RunContext(ctx context.Context, input []byte) ([]Match, *Stats, error) {
	if l.m == nil {
		return nil, nil, fmt.Errorf("cacheautomaton: use of released lease")
	}
	sp := telemetry.ReqTraceFrom(ctx).StartStage("run")
	sp.SetAttr("bytes", int64(len(input)))
	defer sp.End()
	l.m.Reset()
	res, err := l.m.RunContext(ctx, input)
	if err != nil {
		return nil, nil, err
	}
	sp.SetAttr("matches", res.MatchCount)
	return matchesFrom(res.Matches), l.a.statsFrom(res), nil
}

// BatchItem is one input's outcome from Lease.RunBatch. Err is set only
// when that input alone failed (a panic recovered inside its stream);
// the other items are unaffected.
type BatchItem struct {
	Matches []Match
	Stats   *Stats
	Err     error
}

// RunBatch resets the leased machine and scans every input independently
// from offset 0 through it in one batched sweep, returning one item per
// input in order. Match sets, offsets, and statistics are bit-identical
// to running each input with Run on its own lease; only the execution is
// shared (the batch runner interleaves streams across sub-batches, or
// lane-packs up to four streams through the row arrays word-wise when
// the automaton's state fits one word — see machine.RunBatch). Inputs
// are strings so serving paths avoid a per-request byte-slice copy; the
// sweep only reads them. A canceled ctx abandons the whole batch and
// returns its error.
func (l *Lease) RunBatch(ctx context.Context, inputs []string) ([]BatchItem, error) {
	if l.m == nil {
		return nil, fmt.Errorf("cacheautomaton: use of released lease")
	}
	sp := telemetry.ReqTraceFrom(ctx).StartStage("run")
	var total int64
	for _, in := range inputs {
		total += int64(len(in))
	}
	sp.SetAttr("bytes", total)
	sp.SetAttr("streams", int64(len(inputs)))
	defer sp.End()
	l.m.Reset()
	rs, err := l.m.RunBatch(ctx, inputs)
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(rs))
	var matches int64
	for i := range rs {
		if rs[i].Err != nil {
			items[i] = BatchItem{Err: rs[i].Err}
			continue
		}
		items[i] = BatchItem{
			Matches: matchesFrom(rs[i].Matches),
			Stats:   l.a.statsFrom(&rs[i].Result),
		}
		matches += rs[i].MatchCount
	}
	sp.SetAttr("matches", matches)
	return items, nil
}

// Release returns the leased machine to the automaton's pool. Release is
// idempotent; the lease is unusable afterwards.
func (l *Lease) Release() {
	if l.m != nil {
		l.a.runPool.Put(l.m)
		l.m = nil
	}
}

// RunParallel resets the automaton and scans input with up to shards
// replicated machines running concurrently — the software analogue of the
// paper's §3.4 input-stream replication across C-BOXes, with the stream
// divided into contiguous shards instead of duplicated. Matches and
// statistics are bit-identical to Run (shards speculate their start state
// and a repair pass re-runs any shard whose speculation missed; see
// machine.RunSharded). shards < 1 uses GOMAXPROCS; shards == 1, or an
// input too short to be worth sharding, falls back to the sequential path.
//
// Per-cycle RunObserver telemetry is not delivered on the parallel path
// (the shard machines would observe speculative warm-up cycles); the
// ObserveRun end-of-run summary still fires once.
//
// RunParallel leases its shard machines per call, so concurrent
// RunParallel (and mixed Run/RunParallel) callers are safe.
func (a *Automaton) RunParallel(input []byte, shards int) ([]Match, *Stats, error) {
	return a.RunParallelContext(context.Background(), input, shards)
}

// RunParallelContext is RunParallel with deadline-aware cancellation:
// every shard worker checks ctx at sub-batch granularity, so canceling
// the request stops all shards promptly and returns their machines to
// the pool. A worker panic is recovered inside the sharded engine and
// surfaces here as an error, never as a process crash.
func (a *Automaton) RunParallelContext(ctx context.Context, input []byte, shards int) ([]Match, *Stats, error) {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	shards = machine.ShardsFor(shards, len(input))
	if shards == 1 {
		return a.RunContext(ctx, input)
	}
	var start time.Time
	if a.observer != nil {
		start = time.Now()
	}
	pool, err := a.shardPool.GetNContext(ctx, shards)
	if err != nil {
		return nil, nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	defer a.shardPool.PutAll(pool)
	sp := telemetry.ReqTraceFrom(ctx).StartStage("run")
	sp.SetAttr("bytes", int64(len(input)))
	sp.SetAttr("shards", int64(shards))
	res, err := machine.RunShardedContext(ctx, pool, input)
	if err != nil {
		sp.End()
		return nil, nil, fmt.Errorf("cacheautomaton: %w", err)
	}
	sp.SetAttr("matches", res.MatchCount)
	sp.End()
	if a.observer != nil {
		a.observer.ObserveRun(int64(len(input)), time.Since(start).Seconds(),
			res.OutputBufferPeak)
	}
	return matchesFrom(res.Matches), a.statsFrom(res), nil
}

// LeaseStats reports the automaton's machine-pool checkout balance
// across the run and shard pools. A healthy process keeps Gets == Puts
// whenever no Run/Stream/Lease is in flight; the chaos harness asserts
// exactly that after every fault drill.
type LeaseStats struct {
	Gets, Puts int64
}

// LeaseStats snapshots the pool checkout balance.
func (a *Automaton) LeaseStats() LeaseStats {
	r := a.runPool.Stats()
	s := a.shardPool.Stats()
	return LeaseStats{Gets: r.Gets + s.Gets, Puts: r.Puts + s.Puts}
}

// Count processes input without collecting match records (for long
// streams), returning only statistics. The non-collecting machine is built
// once and reused across calls under a mutex, so concurrent Count calls
// serialize (safely and deterministically) rather than each paying for a
// private machine.
func (a *Automaton) Count(input []byte) (*Stats, error) {
	a.countMu.Lock()
	defer a.countMu.Unlock()
	if a.countMachine == nil {
		m, err := machine.New(a.placement, machine.Options{Observer: a.observer})
		if err != nil {
			return nil, fmt.Errorf("cacheautomaton: %w", err)
		}
		a.countMachine = m
	}
	a.countMachine.Reset()
	return a.statsFrom(a.countMachine.Run(input)), nil
}

// States returns the mapped NFA's state count (after CA_S merging).
func (a *Automaton) States() int { return a.nfa.NumStates() }

// Partitions returns how many 256-STE partitions the mapping uses.
func (a *Automaton) Partitions() int { return a.placement.NumPartitions() }

// CacheUsageMB returns the LLC footprint (8 KB per partition, Fig. 8).
func (a *Automaton) CacheUsageMB() float64 { return a.placement.UtilizationMB() }

// FrequencyGHz returns the design's operating frequency (Table 3).
func (a *Automaton) FrequencyGHz() float64 {
	return a.design.OperatingFrequencyGHz(arch.TimingOptions{})
}

// ThroughputGbps returns the deterministic line rate: 8 bits per cycle.
func (a *Automaton) ThroughputGbps() float64 {
	return a.design.ThroughputGbps(arch.TimingOptions{})
}

// WriteANML exports the mapped NFA as an ANML document.
func (a *Automaton) WriteANML(w io.Writer, networkID string) error {
	return anml.Write(w, a.nfa, networkID, nil)
}

// WriteDOT exports the mapped NFA in Graphviz DOT form.
func (a *Automaton) WriteDOT(w io.Writer, name string) error {
	return a.nfa.WriteDOT(w, name)
}

// CompileFuzzy builds an automaton that reports every position where a
// substring within edit distance maxDist of one of the patterns ends
// (insertions, deletions and substitutions all count 1). This is the
// Levenshtein workload of the paper's Table 1, exposed as a library
// feature; matches report the pattern index.
func CompileFuzzy(patterns []string, maxDist int, opts Options) (*Automaton, error) {
	tr := telemetry.NewTrace("compile-fuzzy")
	sp := tr.StartPhase("fuzzy.build")
	n := nfa.New()
	for i, p := range patterns {
		if len(p) == 0 || maxDist < 0 || maxDist >= len(p) {
			return nil, fmt.Errorf("cacheautomaton: pattern %d: need 0 ≤ maxDist < len(pattern)", i)
		}
		n.Union(workload.LevenshteinNFA(p, maxDist, int32(i)))
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	sp.SetAttr("patterns", int64(len(patterns)))
	sp.SetAttr("states", int64(n.NumStates()))
	sp.End()
	return fromNFA(n, opts, tr)
}

// Stream is a stateful scanner over a continuous input: feed chunks as
// they arrive, and suspend/resume across process lifetimes by serializing
// the architectural state (the paper's §2.9 suspend model: "recording the
// number of input symbols processed and the active state vector to
// memory").
//
// A Stream holds a machine leased from the automaton's pool; Close
// returns it for recycling. Streams are single-owner (one goroutine at a
// time), but any number of Streams on one Automaton may run concurrently.
type Stream struct {
	a *Automaton
	m *machine.Machine
}

// Stream opens an independent scanner positioned at offset 0.
func (a *Automaton) Stream() (*Stream, error) {
	m, err := a.runPool.Get()
	if err != nil {
		return nil, err
	}
	return &Stream{a: a, m: m}, nil
}

// StreamContext is Stream with the request-scoped flight recorder
// threaded through: a telemetry.ReqTrace carried by ctx records the
// machine checkout as a "lease" stage span. With no trace in ctx it is
// exactly Stream.
func (a *Automaton) StreamContext(ctx context.Context) (*Stream, error) {
	m, err := a.runPool.GetContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Stream{a: a, m: m}, nil
}

// Feed consumes the next chunk and returns the matches it produced
// (offsets are absolute within the whole stream). Delivered matches are
// drained from the underlying machine, so a long-lived stream retains only
// the matches of the chunk in flight, not every match ever seen. Feeding a
// closed stream returns nil.
func (s *Stream) Feed(chunk []byte) []Match {
	if s.m == nil {
		return nil
	}
	s.m.Run(chunk)
	fresh := s.m.DrainMatches()
	out := make([]Match, 0, len(fresh))
	for _, m := range fresh {
		out = append(out, Match{Offset: m.Offset, Pattern: int(m.Code)})
	}
	return out
}

// FeedContext is Feed with deadline-aware cancellation: the chunk is
// scanned in machine.ContextCheckBytes sub-batches with a ctx check
// between each. On cancellation it returns the matches produced so far
// together with ctx's error; Pos() then reports exactly how much of the
// chunk was consumed, so the caller can resume from the cut point
// without losing or duplicating matches. A ctx that can never be
// canceled behaves exactly like Feed.
func (s *Stream) FeedContext(ctx context.Context, chunk []byte) ([]Match, error) {
	if s.m == nil {
		return nil, nil
	}
	sp := telemetry.ReqTraceFrom(ctx).StartStage("run")
	sp.SetAttr("bytes", int64(len(chunk)))
	defer sp.End()
	_, err := s.m.RunContext(ctx, chunk)
	fresh := s.m.DrainMatches()
	out := make([]Match, 0, len(fresh))
	for _, m := range fresh {
		out = append(out, Match{Offset: m.Offset, Pattern: int(m.Code)})
	}
	sp.SetAttr("matches", int64(len(out)))
	return out, err
}

// Pos returns the absolute offset of the next symbol (0 after Close).
func (s *Stream) Pos() int64 {
	if s.m == nil {
		return 0
	}
	return s.m.Pos()
}

// Suspend serializes the stream's architectural state. The stream remains
// usable; a session-migration handoff is Suspend followed by Close.
func (s *Stream) Suspend(w io.Writer) error {
	if s.m == nil {
		return fmt.Errorf("cacheautomaton: suspend of closed stream")
	}
	_, err := s.m.Snapshot().WriteTo(w)
	return err
}

// Close returns the stream's machine to the automaton's pool. Close is
// idempotent; the stream is unusable afterwards.
func (s *Stream) Close() {
	if s.m != nil {
		s.a.runPool.Put(s.m)
		s.m = nil
	}
}

// ResumeStream reopens a stream from a Suspend-serialized state. The
// automaton must be the same one (same rules, design and seed).
func (a *Automaton) ResumeStream(r io.Reader) (*Stream, error) {
	snap, err := machine.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	s, err := a.Stream()
	if err != nil {
		return nil, err
	}
	if err := s.m.Restore(snap); err != nil {
		s.Close() // return the leased machine; otherwise the checkout leaks
		return nil, err
	}
	return s, nil
}

// ResumeStreamContext is ResumeStream with the request-scoped flight
// recorder threaded through (the machine checkout becomes a "lease"
// stage span on the trace carried by ctx).
func (a *Automaton) ResumeStreamContext(ctx context.Context, r io.Reader) (*Stream, error) {
	snap, err := machine.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	s, err := a.StreamContext(ctx)
	if err != nil {
		return nil, err
	}
	if err := s.m.Restore(snap); err != nil {
		s.Close() // return the leased machine; otherwise the checkout leaks
		return nil, err
	}
	return s, nil
}

// PeakPowerHintW is the compiler's coarse peak-power scheduling hint for
// this mapping (§2.9).
func (a *Automaton) PeakPowerHintW() float64 { return a.placement.PeakPowerHintW() }

// ConfigurationTimeMS models the one-time cost of loading STE pages and
// programming switches for this mapping (§2.10; ≈0.2 ms for the paper's
// largest benchmark, vs tens of ms on the AP).
func (a *Automaton) ConfigurationTimeMS() float64 {
	return arch.ConfigurationTimeMS(a.placement.NumPartitions())
}

// ReplicationFactor returns how many independent copies of this automaton
// fit in cacheBudgetMB — the §5.2 space-to-throughput conversion ("these
// space savings can be directly translated to speedup by matching against
// multiple NFA instances").
func (a *Automaton) ReplicationFactor(cacheBudgetMB float64) int {
	u := a.CacheUsageMB()
	if u <= 0 {
		return 0
	}
	return int(cacheBudgetMB / u)
}

// CompileSnortRules compiles a Snort-style rule file (content/pcre/nocase/
// sid options) into an automaton whose matches report each rule's sid as
// the Pattern field.
func CompileSnortRules(text string, opts Options) (*Automaton, error) {
	tr := telemetry.NewTrace("compile-snort")
	sp := tr.StartPhase("snort.parse+compile")
	rules, err := rulefmt.ParseSnortRules(text)
	if err != nil {
		return nil, err
	}
	n, err := rulefmt.CompileSnort(rules)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("rules", int64(len(rules)))
	sp.SetAttr("states", int64(n.NumStates()))
	sp.End()
	return fromNFA(n, opts, tr)
}

// CompileClamAVDatabase compiles a ClamAV-style hex-signature database
// (one "Name:hexsig" per line; ?? wildcards and {n} skips supported).
// Matches report the signature's index into the returned name list.
func CompileClamAVDatabase(text string, opts Options) (*Automaton, []string, error) {
	tr := telemetry.NewTrace("compile-clamav")
	sp := tr.StartPhase("clamav.parse+compile")
	n, names, err := rulefmt.CompileClamAV(text)
	if err != nil {
		return nil, nil, err
	}
	sp.SetAttr("signatures", int64(len(names)))
	sp.SetAttr("states", int64(n.NumStates()))
	sp.End()
	a, err := fromNFA(n, opts, tr)
	if err != nil {
		return nil, nil, err
	}
	a.sigNames = names
	return a, names, nil
}
