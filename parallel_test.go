package cacheautomaton

import (
	"math/rand"
	"testing"
)

// parallelTestInput mixes pattern fragments into noise, large enough that
// RunParallel actually shards (the engine falls back to sequential below
// ~8 KB per shard).
func parallelTestInput(seed int64, size int, fragments []string) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size)
	for len(out) < size {
		if rng.Intn(8) == 0 {
			out = append(out, fragments[rng.Intn(len(fragments))]...)
		} else {
			out = append(out, byte(rng.Intn(256)))
		}
	}
	return out[:size]
}

// TestRunParallelMatchesRun is the facade-level differential test: every
// shard count must reproduce the sequential matches and statistics
// exactly, including patterns whose state memory outlives any warm-up
// window (`x.*y` forces the repair pass).
func TestRunParallelMatchesRun(t *testing.T) {
	a, err := CompileRegex([]string{"needle[0-9]{2}", "x.*yz", "abba"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := parallelTestInput(3, 200_000, []string{"needle07", "x", "yz", "abba", "needle"})
	wantMatches, wantStats, err := a.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantMatches) == 0 {
		t.Fatal("degenerate test: no matches")
	}
	for _, shards := range []int{2, 3, 8, 0} {
		gotMatches, gotStats, err := a.RunParallel(input, shards)
		if err != nil {
			t.Fatalf("shards %d: %v", shards, err)
		}
		if len(gotMatches) != len(wantMatches) {
			t.Fatalf("shards %d: %d matches, sequential %d", shards, len(gotMatches), len(wantMatches))
		}
		for i := range wantMatches {
			if gotMatches[i] != wantMatches[i] {
				t.Fatalf("shards %d: match %d is %+v, sequential %+v", shards, i, gotMatches[i], wantMatches[i])
			}
		}
		if *gotStats != *wantStats {
			t.Fatalf("shards %d: stats %+v, sequential %+v", shards, *gotStats, *wantStats)
		}
	}
}

// TestRunParallelSmallInputFallsBack checks short inputs take the
// sequential path and still give identical results.
func TestRunParallelSmallInputFallsBack(t *testing.T) {
	a, err := CompileRegex([]string{"cat", "dog.*food"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("the cat ate dog brand food, the cat approved")
	wantMatches, wantStats, err := a.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	gotMatches, gotStats, err := a.RunParallel(input, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMatches) != len(wantMatches) || *gotStats != *wantStats {
		t.Fatalf("fallback differs: %d matches %+v vs %d matches %+v",
			len(gotMatches), *gotStats, len(wantMatches), *wantStats)
	}
}

// TestRunParallelRepeatable runs the parallel path twice: pool machines
// must carry no state between calls.
func TestRunParallelRepeatable(t *testing.T) {
	a, err := CompileRegex([]string{"begin.*end"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := parallelTestInput(9, 120_000, []string{"begin", "end"})
	m1, s1, err := a.RunParallel(input, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := a.RunParallel(input, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) || *s1 != *s2 {
		t.Fatalf("second parallel run differs: %d/%+v vs %d/%+v", len(m2), *s2, len(m1), *s1)
	}
}
