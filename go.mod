module cacheautomaton

go 1.22
