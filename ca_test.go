package cacheautomaton

import (
	"bytes"
	"strings"
	"testing"

	"cacheautomaton/internal/machine"
)

func TestCompileRegexAndRun(t *testing.T) {
	a, err := CompileRegex([]string{"cat", "dog.*food"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matches, stats, err := a.Run([]byte("the cat ate dog brand food"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v, want cat + dog.*food", matches)
	}
	if matches[0].Pattern != 0 || matches[0].Offset != 6 {
		t.Errorf("first match = %+v, want pattern 0 at offset 6", matches[0])
	}
	if matches[1].Pattern != 1 {
		t.Errorf("second match = %+v, want pattern 1", matches[1])
	}
	if stats.Cycles != 26 || stats.Matches != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.EnergyPJPerSymbol <= 0 || stats.AvgPowerW <= 0 || stats.ModeledSeconds <= 0 {
		t.Errorf("hardware stats not populated: %+v", stats)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	a, err := CompileRegex([]string{"abab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ms, _, err := a.Run([]byte("xababab"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 2 {
			t.Fatalf("run %d: matches = %v", i, ms)
		}
	}
}

func TestDesigns(t *testing.T) {
	pats := []string{"^prefix[0-9]{3}", "shared-tail-one", "shared-tail-two"}
	perf, err := CompileRegex(pats, Options{Design: Performance})
	if err != nil {
		t.Fatal(err)
	}
	space, err := CompileRegex(pats, Options{Design: Space})
	if err != nil {
		t.Fatal(err)
	}
	if perf.FrequencyGHz() != 2.0 || space.FrequencyGHz() != 1.2 {
		t.Errorf("frequencies = %v, %v", perf.FrequencyGHz(), space.FrequencyGHz())
	}
	if perf.ThroughputGbps() != 16 {
		t.Errorf("CA_P throughput = %v", perf.ThroughputGbps())
	}
	if space.States() >= perf.States() {
		t.Errorf("Space design should merge states: %d vs %d", space.States(), perf.States())
	}
	in := []byte("prefix123 and shared-tail-two here") // ^-anchored rule needs offset 0
	mp, _, _ := perf.Run(in)
	msp, _, _ := space.Run(in)
	if len(mp) != 2 || len(msp) != 2 {
		t.Fatalf("both designs should find 2 matches: %v vs %v", mp, msp)
	}
	for i := range mp {
		if mp[i] != msp[i] {
			t.Errorf("designs disagree: %v vs %v", mp[i], msp[i])
		}
	}
}

func TestDesignString(t *testing.T) {
	if Performance.String() != "CA_P" || Space.String() != "CA_S" {
		t.Error("Design strings wrong")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileRegex([]string{"(unclosed"}, Options{}); err == nil {
		t.Error("bad regex should error")
	}
	if _, err := CompileRegex([]string{"a*"}, Options{}); err == nil {
		t.Error("nullable pattern should error")
	}
	if _, err := CompileANML(strings.NewReader("not xml"), Options{}); err == nil {
		t.Error("bad ANML should error")
	}
}

func TestANMLRoundTripThroughFacade(t *testing.T) {
	a, err := CompileRegex([]string{"hello", "wor[lk]d"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteANML(&buf, "export"); err != nil {
		t.Fatal(err)
	}
	b, err := CompileANML(&buf, Options{})
	if err != nil {
		t.Fatalf("re-import failed: %v", err)
	}
	in := []byte("hello workd")
	m1, _, _ := a.Run(in)
	m2, _, _ := b.Run(in)
	if len(m1) != len(m2) || len(m1) != 2 {
		t.Fatalf("round trip changed matches: %v vs %v", m1, m2)
	}
}

func TestCaseInsensitive(t *testing.T) {
	a, err := CompileRegex([]string{"Virus"}, Options{CaseInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, _ := a.Run([]byte("VIRUS virus ViRuS"))
	if len(ms) != 3 {
		t.Fatalf("matches = %v, want 3", ms)
	}
}

func TestCountLongStream(t *testing.T) {
	a, err := CompileRegex([]string{"needle"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := bytes.Repeat([]byte("haystack needle "), 1000)
	st, err := a.Count(in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 1000 {
		t.Errorf("matches = %d, want 1000", st.Matches)
	}
	if st.Cycles != int64(len(in)) {
		t.Errorf("cycles = %d, want %d", st.Cycles, len(in))
	}
}

func TestInfoMethods(t *testing.T) {
	a, err := CompileRegex([]string{"abcdef"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.States() != 6 {
		t.Errorf("States = %d", a.States())
	}
	if a.Partitions() != 1 {
		t.Errorf("Partitions = %d", a.Partitions())
	}
	if got := a.CacheUsageMB(); got != 8.0/1024 {
		t.Errorf("CacheUsageMB = %v", got)
	}
	var dot bytes.Buffer
	if err := a.WriteDOT(&dot, "g"); err != nil || !strings.Contains(dot.String(), "digraph") {
		t.Error("WriteDOT failed")
	}
}

func TestStreamFeedAndSuspendResume(t *testing.T) {
	a, err := CompileRegex([]string{"handoff"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Feed([]byte("...hand")); len(got) != 0 {
		t.Fatalf("premature matches: %v", got)
	}
	// Suspend mid-match, resume in a "new process".
	var state bytes.Buffer
	if err := s.Suspend(&state); err != nil {
		t.Fatal(err)
	}
	s2, err := a.ResumeStream(&state)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Pos() != 7 {
		t.Fatalf("resumed Pos = %d, want 7", s2.Pos())
	}
	got := s2.Feed([]byte("off..."))
	if len(got) != 1 || got[0].Offset != 9 || got[0].Pattern != 0 {
		t.Fatalf("resumed stream matches = %v, want one at offset 9", got)
	}
}

// TestResumeStreamRestoreFailureReturnsMachine is the regression test
// for a lease leak: ResumeStream leased a machine before Restore, and a
// Restore failure returned without Close, abandoning the checkout (Gets
// without Puts). The snapshot here decodes fine but carries the wrong
// partition count, so only Restore fails.
func TestResumeStreamRestoreFailureReturnsMachine(t *testing.T) {
	a, err := CompileRegex([]string{"abc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := &machine.Snapshot{Enabled: make([][]uint64, a.Partitions()+1)}
	for i := range snap.Enabled {
		snap.Enabled[i] = []uint64{}
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	before := a.runPool.Stats()
	if _, err := a.ResumeStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ResumeStream accepted a snapshot with the wrong partition count")
	}
	after := a.runPool.Stats()
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("failed resume leaked a machine: %d gets vs %d puts", gets, puts)
	}
}

func TestStreamIncrementalDelivery(t *testing.T) {
	a, err := CompileRegex([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := a.Stream()
	total := 0
	for _, chunk := range []string{"ab", "ab", "xxab"} {
		total += len(s.Feed([]byte(chunk)))
	}
	if total != 3 {
		t.Fatalf("delivered %d matches, want 3", total)
	}
	// No duplicates on empty feed.
	if got := s.Feed(nil); len(got) != 0 {
		t.Fatalf("empty feed returned %v", got)
	}
}

func TestSystemHints(t *testing.T) {
	a, err := CompileRegex([]string{"pattern[0-9]{2}"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakPowerHintW() <= 0 {
		t.Error("peak power hint should be positive")
	}
	if a.ConfigurationTimeMS() <= 0 {
		t.Error("configuration time should be positive")
	}
	// One partition (8KB) replicates ~2560 times into a 20MB LLC.
	if got := a.ReplicationFactor(20); got != 2560 {
		t.Errorf("ReplicationFactor(20MB) = %d, want 2560", got)
	}
	if a.ReplicationFactor(0) != 0 {
		t.Error("zero budget should give zero replicas")
	}
}

func TestCompileSnortRulesFacade(t *testing.T) {
	rules := `alert tcp any any (msg:"probe"; content:"/cgi-bin/phf"; sid:42;)
alert tcp any any (pcre:"/exploit[0-9]+z/i"; sid:43;)`
	a, err := CompileSnortRules(rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, _ := a.Run([]byte("GET /cgi-bin/phf and EXPLOIT99z"))
	sids := map[int]bool{}
	for _, m := range ms {
		sids[m.Pattern] = true
	}
	if !sids[42] || !sids[43] {
		t.Fatalf("sids = %v, want 42 and 43", sids)
	}
	if _, err := CompileSnortRules("garbage", Options{}); err == nil {
		t.Error("bad rules should error")
	}
}

func TestCompileClamAVFacade(t *testing.T) {
	a, names, err := CompileClamAVDatabase("Sig.A:414243\nSig.B:58??5a", Options{Design: Space})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "Sig.A" {
		t.Fatalf("names = %v", names)
	}
	ms, _, _ := a.Run([]byte("..ABC..XqZ.."))
	if len(ms) != 2 {
		t.Fatalf("matches = %v, want both signatures", ms)
	}
}

func TestStreamFeedBoundedRetention(t *testing.T) {
	a, err := CompileRegex([]string{"a"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Stream()
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte("a"), 50)
	for i := 0; i < 20; i++ {
		if got := s.Feed(chunk); len(got) != len(chunk) {
			t.Fatalf("feed %d delivered %d matches, want %d", i, len(got), len(chunk))
		}
		// Regression: delivered matches must be drained from the machine,
		// not retained for the lifetime of the stream.
		if kept := len(s.m.Run(nil).Matches); kept != 0 {
			t.Fatalf("feed %d: stream machine retains %d delivered matches", i, kept)
		}
	}
	if s.Pos() != 20*50 {
		t.Errorf("Pos = %d", s.Pos())
	}
}

func TestCountReusesMachine(t *testing.T) {
	a, err := CompileRegex([]string{"needle"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("a needle in a haystack")
	st1, err := a.Count(in)
	if err != nil {
		t.Fatal(err)
	}
	m := a.countMachine
	if m == nil {
		t.Fatal("Count did not cache its machine")
	}
	st2, err := a.Count(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.countMachine != m {
		t.Error("Count rebuilt the machine on the second call")
	}
	if st1.Matches != 1 || st2.Matches != st1.Matches || st2.Cycles != st1.Cycles {
		t.Errorf("cached Count diverged: %+v vs %+v", st1, st2)
	}
	// Count and Run must agree.
	_, rst, err := a.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Matches != st1.Matches || rst.AvgActiveStates != st1.AvgActiveStates {
		t.Errorf("Count = %+v disagrees with Run = %+v", st1, rst)
	}
}

func TestCompileReport(t *testing.T) {
	a, err := CompileRegex([]string{"cat", "dog.*food"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := a.CompileReport()
	if r == nil || r.Name != "compile-regex" {
		t.Fatalf("report = %+v", r)
	}
	byName := map[string]CompilePhase{}
	for _, p := range r.Phases {
		byName[p.Name] = p
	}
	for _, want := range []string{"regexc.parse", "regexc.glushkov", "map.components", "map.pack", "map.cross", "machine.build"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("report missing phase %q (have %v)", want, r.Phases)
		}
	}
	if got := byName["regexc.parse"].Stats["patterns"]; got != 2 {
		t.Errorf("patterns = %d, want 2", got)
	}
	if got := byName["regexc.glushkov"].Stats["states"]; got != int64(a.States()) {
		t.Errorf("glushkov states = %d, want %d", got, a.States())
	}
	if got := byName["machine.build"].Stats["partitions"]; got != int64(a.Partitions()) {
		t.Errorf("machine.build partitions = %d, want %d", got, a.Partitions())
	}
	out := r.String()
	if !strings.Contains(out, "compile-regex") || !strings.Contains(out, "regexc.parse") {
		t.Errorf("formatted report:\n%s", out)
	}
	// The CA_S back-off ladder shows up in space-design reports.
	as, err := CompileRegex([]string{"cat", "category"}, Options{Design: Space})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range as.CompileReport().Phases {
		if strings.HasPrefix(p.Name, "backoff.") {
			found = true
		}
	}
	if !found {
		t.Errorf("space-design report has no backoff phases: %+v", as.CompileReport().Phases)
	}
}

// countingObserver verifies the RunObserver wiring end to end.
type countingObserver struct {
	cycles, matches, runs int64
}

func (o *countingObserver) ObserveCycle(states, parts, g1, g4 int64) { o.cycles++ }
func (o *countingObserver) ObserveMatches(n int64)                   { o.matches += n }
func (o *countingObserver) ObserveOverflow()                         {}
func (o *countingObserver) ObserveRun(symbols int64, seconds float64, peak int64) {
	o.runs++
}

func TestRunObserverWiring(t *testing.T) {
	obs := &countingObserver{}
	a, err := CompileRegex([]string{"cat"}, Options{RunObserver: obs})
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("the cat sat")
	if _, _, err := a.Run(in); err != nil {
		t.Fatal(err)
	}
	if obs.cycles != int64(len(in)) || obs.matches != 1 || obs.runs != 1 {
		t.Errorf("observer saw cycles=%d matches=%d runs=%d", obs.cycles, obs.matches, obs.runs)
	}
	// Count and Stream machines inherit the observer.
	if _, err := a.Count(in); err != nil {
		t.Fatal(err)
	}
	if obs.runs != 2 {
		t.Errorf("Count did not report to the observer (runs=%d)", obs.runs)
	}
	s, err := a.Stream()
	if err != nil {
		t.Fatal(err)
	}
	s.Feed(in)
	if obs.runs != 3 {
		t.Errorf("Stream did not report to the observer (runs=%d)", obs.runs)
	}
}
